"""Shared types for the selection problem (the paper's Problem 2).

A selection algorithm consumes the DFGs of all (profiled) basic blocks of
an application and returns up to ``Ninstr`` cuts maximising total merit.
:class:`SelectionResult` carries enough information to regenerate every
number reported in the paper's Fig. 11: the chosen cuts, the total merit
(saved cycles) and the resulting estimated application speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..hwmodel.latency import CostModel
from ..hwmodel.merit import application_cycles, estimated_speedup
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut
from .single_cut import SearchStats


@dataclass
class SelectionResult:
    """Outcome of a selection algorithm run over a whole application."""

    algorithm: str
    constraints: Constraints
    cuts: List[Cut]
    total_merit: float
    baseline_cycles: float
    stats: SearchStats = field(default_factory=SearchStats)
    complete: bool = True

    @property
    def speedup(self) -> float:
        """Estimated whole-application speedup (paper's Fig. 11 metric)."""
        return estimated_speedup(self.baseline_cycles, self.total_merit)

    @property
    def num_instructions(self) -> int:
        """Number of custom instructions the algorithm selected."""
        return len(self.cuts)

    def describe(self) -> str:
        """Multi-line report: header (algorithm, constraints, merit,
        speedup) followed by one line per selected cut."""
        lines = [
            f"{self.algorithm} ({self.constraints.describe()}): "
            f"{self.num_instructions} instruction(s), "
            f"merit={self.total_merit:g} cycles saved, "
            f"speedup={self.speedup:.3f}x"
        ]
        for k, cut in enumerate(self.cuts):
            lines.append(f"  [{k}] {cut.describe()}")
        return "\n".join(lines)


def make_result(
    algorithm: str,
    constraints: Constraints,
    cuts: Sequence[Cut],
    dfgs: Sequence[DataFlowGraph],
    model: CostModel,
    stats: Optional[SearchStats] = None,
    complete: bool = True,
) -> SelectionResult:
    """Assemble a :class:`SelectionResult`, computing the baseline.

    Every selection algorithm funnels through here, so this is where
    the independent mask-based checker re-validates each returned cut
    against the paper's constraints when ``$REPRO_VERIFY`` is on — a
    failure names the algorithm, the cut, its block and the violated
    constraint code (``S0xx``).
    """
    from ..analysis.selection_check import assert_cut
    from ..analysis.verifier import verify_enabled

    if verify_enabled():
        for cut in cuts:
            assert_cut(cut, constraints.nin, constraints.nout,
                       algorithm=algorithm)
    total_merit = sum(cut.merit for cut in cuts)
    return SelectionResult(
        algorithm=algorithm,
        constraints=constraints,
        cuts=list(cuts),
        total_merit=total_merit,
        baseline_cycles=application_cycles(dfgs, model),
        stats=stats or SearchStats(),
        complete=complete,
    )


def merge_stats(target: SearchStats, source: SearchStats) -> None:
    """Accumulate *source* counters into *target* (graph_nodes keeps the
    maximum, the rest add up; ``space_covered`` becomes a sum of
    per-search fractions and is only meaningful as a relative progress
    measure across identically structured runs)."""
    target.graph_nodes = max(target.graph_nodes, source.graph_nodes)
    target.cuts_considered += source.cuts_considered
    target.cuts_feasible += source.cuts_feasible
    target.cuts_infeasible += source.cuts_infeasible
    target.best_updates += source.best_updates
    target.ub_pruned += source.ub_pruned
    target.space_covered += source.space_covered

"""Iterative selection (Section 6.3 of the paper).

Repeatedly runs single-cut identification.  After a cut is chosen it is
*collapsed* into a single forbidden supernode of its block's DFG, so later
rounds can neither reuse its operations nor form cuts that would be
non-convex through it.  Globally, at every round the block offering the
largest merit improvement contributes the next instruction — the same
greedy outer loop as optimal selection, but with the cheap identifier.

The expensive first round (one exhaustive identification per block) is
independent across blocks and fans out over processes when ``workers``
(or ``REPRO_WORKERS``) asks for it; results are identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut
from .parallel import cached_parallel_map
from .selection import SelectionResult, make_result, merge_stats
from .single_cut import SearchLimits, SearchResult, SearchStats, find_best_cut


def _search_one_block(job: Tuple) -> SearchResult:
    """Module-level worker: one per-block identification (picklable)."""
    dfg, constraints, model, limits = job
    return find_best_cut(dfg, constraints, model, limits)


def _cached_first_round(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    model: CostModel,
    limits: Optional[SearchLimits],
    workers: Optional[int],
    cache,
) -> List[SearchResult]:
    """One identification per block: cache hits in-process, misses
    fanned out (results identical to the uncached path)."""
    return cached_parallel_map(
        _search_one_block,
        [(dfg, constraints, model, limits) for dfg in dfgs],
        workers=workers,
        lookup=(lambda job: cache.get_single(job[0], constraints, model,
                                             limits))
        if cache is not None else None,
        store=lambda job, result: cache.put_single(
            job[0], constraints, model, limits, result),
    )


@dataclass
class _BlockState:
    """Per-basic-block state of the iterative selection loop."""

    original: DataFlowGraph
    current: DataFlowGraph
    candidate: Optional[Cut]
    rounds: int = 0
    complete: bool = True


def select_iterative(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    workers: Optional[int] = None,
    cache=None,
) -> SelectionResult:
    """Choose up to ``constraints.ninstr`` cuts across all blocks.

    Args:
        dfgs: one DFG per (profiled) basic block.
        constraints: I/O port limits and the instruction budget.
        model: cost model for the merit function.
        limits: optional per-identification search budget.
        workers: processes for the per-block first round (default: the
            ``REPRO_WORKERS`` environment variable, else serial).
        cache: optional identification memo (e.g. ``repro.explore.
            SearchCache``); hits skip per-block searches, results are
            bit-identical either way.
    """
    model = model or CostModel()
    stats = SearchStats()
    complete = True

    first_round = _cached_first_round(dfgs, constraints, model, limits,
                                      workers, cache)
    states: List[_BlockState] = []
    for dfg, result in zip(dfgs, first_round):
        merge_stats(stats, result.stats)
        complete = complete and result.complete
        states.append(_BlockState(
            original=dfg,
            current=dfg,
            candidate=result.cut,
        ))

    chosen: List[Cut] = []
    while len(chosen) < constraints.ninstr:
        best_state: Optional[_BlockState] = None
        for state in states:
            if state.candidate is None or state.candidate.merit <= 0:
                continue
            if (best_state is None
                    or state.candidate.merit > best_state.candidate.merit):
                best_state = state
        if best_state is None:
            break

        cut = best_state.candidate
        chosen.append(cut)
        best_state.rounds += 1
        if len(chosen) >= constraints.ninstr:
            break       # budget filled: a replacement candidate would
            #             never be read, so don't search for one

        # Collapse the chosen cut and look for the next one in this block.
        collapsed = best_state.current.collapse(
            cut.nodes, label=f"ise{best_state.rounds}")
        best_state.current = collapsed
        result = find_best_cut(collapsed, constraints, model, limits,
                               cache=cache)
        merge_stats(stats, result.stats)
        complete = complete and result.complete
        best_state.candidate = result.cut

    return make_result(
        algorithm="Iterative",
        constraints=constraints,
        cuts=chosen,
        dfgs=dfgs,
        model=model,
        stats=stats,
        complete=complete,
    )

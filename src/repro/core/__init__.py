"""The paper's contribution: identification and selection of instruction-set
extensions under microarchitectural constraints."""

from .cut import Constraints, Cut, cut_is_feasible, evaluate_cut
from .single_cut import (
    SearchLimits,
    SearchResult,
    SearchStats,
    enumerate_feasible_cuts,
    find_best_cut,
    search_statistics,
)
from .multi_cut import MultiCutResult, find_best_cuts
from .selection import SelectionResult, make_result
from .select_area import (
    AreaCandidate,
    enumerate_candidates,
    greedy_select,
    knapsack_select,
    select_area_constrained,
)
from .select_iterative import select_iterative
from .select_optimal import BlockTooLargeError, select_optimal
from .baselines import (
    clubs_of_block,
    maxmiso_cuts,
    maxmiso_partition,
    select_clubbing,
    select_maxmiso,
)

__all__ = [
    "Constraints", "Cut", "evaluate_cut", "cut_is_feasible",
    "find_best_cut", "enumerate_feasible_cuts", "search_statistics",
    "SearchStats", "SearchLimits", "SearchResult",
    "find_best_cuts", "MultiCutResult",
    "SelectionResult", "make_result",
    "select_iterative", "select_optimal", "BlockTooLargeError",
    "select_area_constrained", "AreaCandidate", "enumerate_candidates",
    "knapsack_select", "greedy_select",
    "select_clubbing", "clubs_of_block",
    "select_maxmiso", "maxmiso_cuts", "maxmiso_partition",
]

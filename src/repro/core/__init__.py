"""The paper's contribution: identification and selection of instruction-set
extensions under microarchitectural constraints.

Both identification algorithms run on the shared bitset branch-and-bound
engine (:mod:`repro.core.engine`): an iterative decision-tree walk whose
incremental convexity/IO state is packed into Python-int bitsets, with
the search budget as a plain loop condition.  On top of the paper's
monotone output-port/convexity pruning, ``SearchLimits(use_upper_bound=
True)`` enables an admissible merit upper bound that discards subtrees
which cannot beat the incumbent — the same best cut, fewer cuts
examined; the subtrees it removes are counted in ``SearchStats.
ub_pruned`` and search progress in ``SearchStats.space_covered``.

The per-block searches of the selection strategies are independent and
can fan out across processes: pass ``workers=`` to ``select_iterative``
/ ``select_optimal`` / ``select_area_constrained`` (or set the
``REPRO_WORKERS`` environment variable; serial by default, with a
silent serial fallback wherever process pools are unavailable).

Identification calls additionally accept a duck-typed ``cache=`` memo
(``repro.explore.SearchCache``): hits skip the exponential searches
with bit-identical results, which is what makes whole design-space
sweeps (``repro sweep``) an order of magnitude cheaper than one CLI
invocation per grid point (DESIGN.md §8).
"""

from .cut import Constraints, Cut, cut_is_feasible, evaluate_cut
from .engine import run_multi_cut, run_single_cut
from .parallel import cached_parallel_map, parallel_map, resolve_workers
from .single_cut import (
    SearchLimits,
    SearchResult,
    SearchStats,
    enumerate_feasible_cuts,
    find_best_cut,
    search_statistics,
)
from .multi_cut import MultiCutResult, find_best_cuts
from .selection import SelectionResult, make_result
from .select_area import (
    AreaCandidate,
    enumerate_candidates,
    greedy_select,
    knapsack_select,
    select_area_constrained,
)
from .select_iterative import select_iterative
from .select_optimal import BlockTooLargeError, select_optimal
from .baselines import (
    clubs_of_block,
    maxmiso_cuts,
    maxmiso_partition,
    select_clubbing,
    select_maxmiso,
)

__all__ = [
    "Constraints", "Cut", "evaluate_cut", "cut_is_feasible",
    "find_best_cut", "enumerate_feasible_cuts", "search_statistics",
    "SearchStats", "SearchLimits", "SearchResult",
    "run_single_cut", "run_multi_cut",
    "parallel_map", "cached_parallel_map", "resolve_workers",
    "find_best_cuts", "MultiCutResult",
    "SelectionResult", "make_result",
    "select_iterative", "select_optimal", "BlockTooLargeError",
    "select_area_constrained", "AreaCandidate", "enumerate_candidates",
    "knapsack_select", "greedy_select",
    "select_clubbing", "clubs_of_block",
    "select_maxmiso", "maxmiso_cuts", "maxmiso_partition",
]

"""Bitset branch-and-bound engine — the shared hot path of identification.

Both identification algorithms (single-cut, Fig. 6; multi-cut, Fig. 9)
walk the same decision tree: level ``i`` decides the fate of DFG node
``i``, nodes being numbered in reverse topological order so the output
count and convexity of a growing cut are monotone along 1-branches.  The
seed implementation expressed this as two near-identical recursive
searches with per-edge Python loops; this module replaces both with one
iterative engine whose per-node state lives in Python ints used as
bitsets (see DESIGN.md §5 for the encoding):

* ``member`` — bit ``i`` set iff node ``i`` is in the cut;
* ``reach`` — the paper's R bit ("can reach a cut member") for all
  *decided* nodes at once;
* ``bb`` — the fused "would break convexity" bit: for an excluded node
  it equals R, for an included node it equals the paper's B bit.  A
  *committed* inclusion always has B = 0 (a violating inclusion is
  rejected before any state is touched), so including node ``v`` never
  sets a ``bb`` bit and the convexity check collapses to a single
  ``succ[i] & bb`` test;
* ``prod_union`` — union of the unified producer masks of the members,
  so ``IN(S) = popcount(prod_union & ~member)`` replaces the reference
  counting of the recursive version;
* node ``i`` is an output iff it is forced out or ``succ[i] & member !=
  succ[i]``.

Bits at or above the current tree level are kept at zero (backtracking
masks them off wholesale), so decisions only ever OR bits in — no
per-level clears, and no stale state.

The recursion is converted to an explicit decision stack (no
``sys.setrecursionlimit`` games), and the search budget is a plain loop
condition instead of a control-flow exception.

Beyond the paper's monotone output/convexity pruning, the engine
optionally applies an **admissible merit upper bound**: at level ``i``
no extension can add more software mass than the summed software latency
of the undecided, non-forbidden nodes ``i..n-1``, while the hardware
cycle count can only grow — so when

``weight * (sw_sum + suffix_sw[i] - ceil_cycles(cp_max)) <= best_merit``

the whole subtree is pruned.  This never changes the returned best cut
(the bound is admissible and ties never replace the incumbent); it is
off by default so default searches reproduce the paper's statistics
exactly, and the subtrees it removes are reported separately in
``SearchStats.ub_pruned``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints


@dataclass
class SearchStats:
    """Counters describing one identification run (cf. Figs. 7 and 8)."""

    graph_nodes: int = 0
    cuts_considered: int = 0   # tree nodes reached through a 1-branch
    cuts_feasible: int = 0     # passed output-port AND convexity checks
    cuts_infeasible: int = 0   # failed a monotone check (subtree pruned)
    best_updates: int = 0
    ub_pruned: int = 0         # subtrees cut by the merit upper bound
    space_covered: float = 0.0  # fraction of the 2^n node assignments
    #   decided when the search stopped: 1.0 on complete runs, the mass
    #   left of the DFS frontier on budget-stopped ones (single-cut
    #   engine only)

    @property
    def cuts_eliminated(self) -> int:
        """Cuts never examined thanks to pruning (out of 2^n - 1)."""
        total = (1 << self.graph_nodes) - 1
        return total - self.cuts_considered


@dataclass(frozen=True)
class SearchLimits:
    """Optional budget and extra pruning for the exponential search.

    ``max_considered`` bounds the number of cuts examined; when exhausted
    the search stops early and the result is flagged incomplete.
    ``use_upper_bound`` additionally prunes subtrees whose admissible
    merit upper bound cannot beat the incumbent — same best cut, fewer
    cuts examined (single-cut searches only; ignored while enumerating,
    which must visit every feasible cut, and by the multi-cut search).
    """

    max_considered: Optional[int] = None
    use_upper_bound: bool = False


def ceil_cycles(critical_path: float) -> int:
    """Cycles of a *nonempty* cut: at least one (the issue slot), else the
    ceiling of the critical path."""
    if critical_path <= 0.0:
        return 1
    return max(1, math.ceil(critical_path - 1e-9))


# ----------------------------------------------------------------------
# Single-cut search (Fig. 6).
# ----------------------------------------------------------------------
def run_single_cut(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: CostModel,
    limits: Optional[SearchLimits] = None,
    on_feasible: Optional[Callable[[Tuple[int, ...], float], None]] = None,
) -> Tuple[Optional[Tuple[int, ...]], float, SearchStats, bool]:
    """Exact best-cut search; returns ``(best_nodes, best_merit, stats,
    complete)``.

    Visits tree nodes in exactly the order of the recursive reference
    (include branch first), so statistics and tie-breaks are identical.
    ``on_feasible`` is invoked for every feasible cut within the input
    constraint, with the member tuple (ascending) and its merit.
    """
    n = dfg.n
    stats = SearchStats(graph_nodes=n)
    if n == 0:
        stats.space_covered = 1.0
        return None, 0.0, stats, True

    masks = dfg.masks
    succ_mask = masks.succ
    producer_mask = masks.producer
    forced_out = masks.forced_out
    forbidden = masks.forbidden
    sw, hw = dfg.cost_vectors(model)

    # Remaining software-latency mass of nodes i..n-1 (forbidden nodes
    # already cost 0.0 in the cached vector).
    suffix_sw = [0.0] * (n + 1)
    for j in range(n - 1, -1, -1):
        suffix_sw[j] = sw[j] + suffix_sw[j + 1]
    lowmask = [(1 << j) - 1 for j in range(n)]
    ceil_ = math.ceil

    weight = dfg.weight
    nin = constraints.nin
    nout = constraints.nout
    if limits is None:
        limit: float = math.inf
        use_ub = False
    else:
        limit = math.inf if limits.max_considered is None \
            else limits.max_considered
        use_ub = limits.use_upper_bound and on_feasible is None
    has_cb = on_feasible is not None
    # When Nin can never be exceeded the popcount test is dead weight.
    union_all = 0
    for pm in producer_mask:
        union_all |= pm
    check_nin = nin < union_all.bit_count()

    # Merit bookkeeping happens in "rel" space (sw_sum - cycles); the
    # block weight is a positive constant factor, multiplied back in only
    # for reporting.  All quantities are integer-valued floats, so the
    # comparisons are exact.
    member = 0          # bit i: node i is in the cut
    reach = 0           # R bits of decided nodes
    bb = 0              # fused convexity-violation bits (see module doc)
    prod_union = 0      # union of producer masks of members
    out_count = 0
    sw_sum = 0.0
    cp_max = 0.0
    cycles = 1          # ceil_cycles(cp_max), maintained incrementally
    cpl = [0.0] * n     # critical path from node to cut sinks, members only
    # Decision stack, one slot per live inclusion (parallel arrays are
    # measurably cheaper than tuple frames in this loop).
    st_v = [0] * n      # included node
    st_u = [0] * n      # previous prod_union
    st_cp = [0.0] * n   # previous cp_max
    st_cy = [1] * n     # previous cycles
    st_o = [0] * n      # did the node enter as an output
    sp = 0

    best_rel = math.inf if weight <= 0.0 else 0.0
    best_nodes: Optional[Tuple[int, ...]] = None

    considered = 0
    feasible = 0
    best_updates = 0
    ub_pruned = 0
    complete = True

    i = 0
    while True:
        if i == n or (use_ub
                      and sw_sum + suffix_sw[i] - cycles <= best_rel):
            if i < n:
                ub_pruned += 1
            # Backtrack to the deepest live inclusion.
            if not sp:
                break
            sp -= 1
            v = st_v[sp]
            prod_union = st_u[sp]
            cp_max = st_cp[sp]
            cycles = st_cy[sp]
            out_count -= st_o[sp]
            bit = 1 << v
            member ^= bit
            sw_sum -= sw[v]
            lm = lowmask[v]
            reach &= lm         # wholesale-clear bits at/above v
            bb &= lm
            sm = succ_mask[v]
            if sm & reach:      # exclude decision for v
                reach |= bit
                bb |= bit
            i = v + 1
            continue

        bit = 1 << i
        sm = succ_mask[i]
        if forbidden & bit:
            if sm & reach:
                reach |= bit
                bb |= bit
            i += 1
            continue
        considered += 1
        if considered > limit:
            complete = False
            break
        if sm & bb:
            # Convexity violated; bb implies reach, so the exclude
            # decision is unconditional.  Nothing was committed.
            reach |= bit
            bb |= bit
            i += 1
            continue
        sm_m = sm & member
        is_out = 1 if (sm_m != sm or forced_out & bit) else 0
        if out_count + is_out > nout:
            if sm & reach:
                reach |= bit
                bb |= bit
            i += 1
            continue
        # Both monotone checks hold: commit the inclusion.
        feasible += 1
        st_v[sp] = i
        st_u[sp] = prod_union
        st_cp[sp] = cp_max
        st_cy[sp] = cycles
        st_o[sp] = is_out
        sp += 1
        member |= bit
        reach |= bit
        out_count += is_out
        prod_union |= producer_mask[i]
        sw_sum += sw[i]
        # Hardware critical path through included successors.
        if sm_m:
            best_succ = 0.0
            rest = sm_m
            while rest:
                low = rest & -rest
                c = cpl[low.bit_length() - 1]
                if c > best_succ:
                    best_succ = c
                rest ^= low
            cp = hw[i] + best_succ
        else:
            cp = hw[i]
        cpl[i] = cp
        if cp > cp_max:
            cp_max = cp
            c2 = ceil_(cp - 1e-9)
            cycles = c2 if c2 > 1 else 1
        # Candidate incumbent (input constraint is not monotone: it only
        # filters, never prunes).
        if not check_nin or (prod_union & ~member).bit_count() <= nin:
            rel = sw_sum - cycles
            if has_cb:
                on_feasible(tuple(st_v[:sp]), weight * rel)
            if rel > best_rel:
                best_rel = rel
                best_nodes = tuple(st_v[:sp])
                best_updates += 1
        i += 1

    # Deferred accounting: every considered node was either committed or
    # rejected (except one aborted by the budget), and the decided mass
    # is everything left of the DFS frontier.
    if complete:
        stats.cuts_infeasible = considered - feasible
        stats.space_covered = 1.0
    else:
        stats.cuts_infeasible = considered - feasible - 1
        covered = 0.0
        for level in range(i):
            if not member >> level & 1:
                covered += 2.0 ** -(level + 1)
        stats.space_covered = covered
    stats.cuts_considered = considered
    stats.cuts_feasible = feasible
    stats.best_updates = best_updates
    stats.ub_pruned = ub_pruned
    best_merit = 0.0 if best_nodes is None else weight * best_rel
    return best_nodes, best_merit, stats, complete


# ----------------------------------------------------------------------
# Multi-cut search (Fig. 9): M disjoint cuts, (M+1)-ary decision tree.
# ----------------------------------------------------------------------
def run_multi_cut(
    dfg: DataFlowGraph,
    constraints: Constraints,
    num_cuts: int,
    model: CostModel,
    limits: Optional[SearchLimits] = None,
) -> Tuple[Optional[List[Tuple[int, ...]]], float, SearchStats, bool]:
    """Exact search for up to *num_cuts* disjoint cuts maximising total
    merit; returns ``(best_sets, best_total, stats, complete)``.

    Cut labels are canonicalised exactly as in the recursive reference: a
    node may open cut ``k`` only when cuts ``0..k-1`` are already
    nonempty, which removes the factorial label symmetry.
    """
    if num_cuts < 1:
        raise ValueError("num_cuts must be >= 1")
    limits = limits or SearchLimits()
    n = dfg.n
    m = num_cuts
    stats = SearchStats(graph_nodes=n)
    if n == 0:
        stats.space_covered = 1.0
        return None, 0.0, stats, True

    masks = dfg.masks
    succ_mask = masks.succ
    producer_mask = masks.producer
    forced_out = masks.forced_out
    forbidden = masks.forbidden
    sw, hw = dfg.cost_vectors(model)

    weight = dfg.weight
    nin = constraints.nin
    nout = constraints.nout
    limit = limits.max_considered

    # Per-cut state, in parallel lists indexed by the cut label.
    member = [0] * m
    reach = [0] * m
    bad = [0] * m
    prod_union = [0] * m
    out_count = [0] * m
    sw_sum = [0.0] * m
    cp_max = [0.0] * m
    cpl = [[0.0] * n for _ in range(m)]
    open_cuts = 0

    # Frames of live inclusions: (v, k, opened, prev prod_union,
    # prev cp_max, whether v entered cut k as an output).
    frames: List[Tuple[int, int, int, int, float, int]] = []

    best_total = 0.0
    best_sets: Optional[List[Tuple[int, ...]]] = None

    considered = 0
    feasible = 0
    infeasible = 0
    best_updates = 0
    complete = True

    i = 0
    k = 0       # next cut label to try at level i
    while True:
        if i == n:
            if not frames:
                break
            v, kk, opened, prod_union[kk], cp_max[kk], was_out = \
                frames.pop()
            member[kk] ^= 1 << v
            sw_sum[kk] -= sw[v]
            out_count[kk] -= was_out
            open_cuts -= opened
            i, k = v, kk + 1
            continue

        bit = 1 << i
        if forbidden & bit:
            k = m       # no include branches for forbidden nodes
        max_k = min(m, open_cuts + 1)
        if k < max_k:
            considered += 1
            if limit is not None and considered > limit:
                complete = False
                break
            sm = succ_mask[i]
            mem_k = member[k]
            violation = sm & (bad[k] | (reach[k] & ~mem_k))
            is_out = 1 if (forced_out & bit or sm & ~mem_k) else 0
            if violation or out_count[k] + is_out > nout:
                infeasible += 1
                k += 1
                continue
            feasible += 1
            opened = 1 if mem_k == 0 else 0
            frames.append((i, k, opened, prod_union[k], cp_max[k], is_out))
            member[k] = mem_k | bit
            reach[k] |= bit
            bad[k] &= ~bit
            out_count[k] += is_out
            prod_union[k] |= producer_mask[i]
            sw_sum[k] += sw[i]
            best_succ = 0.0
            cpl_k = cpl[k]
            rest = sm & mem_k
            while rest:
                low = rest & -rest
                c = cpl_k[low.bit_length() - 1]
                if c > best_succ:
                    best_succ = c
                rest ^= low
            cp = hw[i] + best_succ
            cpl_k[i] = cp
            if cp > cp_max[k]:
                cp_max[k] = cp
            open_cuts += opened
            # The other cuts see node i as excluded.
            for other in range(m):
                if other == k:
                    continue
                smo = succ_mask[i]
                reach[other] = (reach[other] | bit if smo & reach[other]
                                else reach[other] & ~bit)
                bad[other] = (
                    bad[other] | bit
                    if smo & (bad[other]
                              | (reach[other] & ~member[other]))
                    else bad[other] & ~bit)
            # Candidate incumbent: every nonempty cut must satisfy the
            # input constraint before the total is even considered.
            total = 0.0
            for c in range(m):
                mc = member[c]
                if not mc:
                    continue
                if (prod_union[c] & ~mc).bit_count() > nin:
                    break
                cpc = cp_max[c]
                total += weight * (
                    sw_sum[c] - (1 if cpc <= 0.0
                                 else max(1, math.ceil(cpc - 1e-9))))
            else:
                if total > best_total:
                    best_total = total
                    best_sets = [_bits_to_tuple(member[c])
                                 for c in range(m)]
                    best_updates += 1
            i, k = i + 1, 0
            continue

        # All include branches tried (or node forbidden): node i stays in
        # software for every cut.
        for c in range(m):
            sm = succ_mask[i]
            reach[c] = reach[c] | bit if sm & reach[c] else reach[c] & ~bit
            bad[c] = (bad[c] | bit
                      if sm & (bad[c] | (reach[c] & ~member[c]))
                      else bad[c] & ~bit)
        i, k = i + 1, 0

    stats.cuts_considered = considered
    stats.cuts_feasible = feasible
    stats.cuts_infeasible = infeasible
    stats.best_updates = best_updates
    # The (M+1)-ary tree has no per-subtree mass accounting; report only
    # the complete/incomplete extremes of the coverage statistic.
    stats.space_covered = 1.0 if complete else 0.0
    return best_sets, best_total, stats, complete


def _bits_to_tuple(mask: int) -> Tuple[int, ...]:
    """Set bits of *mask*, ascending — the include order of the search."""
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)

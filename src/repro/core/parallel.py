"""Process-parallel execution of independent per-block searches.

The identification of the best cut in one basic block is completely
independent of every other block, so the first round of each selection
strategy (one exhaustive search per DFG) parallelises embarrassingly.
This module provides the single primitive the strategies need — an
ordered ``map`` over picklable work items — together with the knob that
controls it:

* ``workers=`` argument on ``select_iterative`` / ``select_optimal`` /
  ``select_area_constrained`` (and ``--workers`` on the CLI);
* the ``REPRO_WORKERS`` environment variable as the default when the
  argument is omitted.

The default is serial (``workers=1``): results are bit-identical either
way, but forking has a real cost, so parallelism is opt-in.  Any failure
to parallelise (no ``fork`` support, unpicklable payloads, sandboxed
environments without semaphores) degrades silently to the serial path —
parallelism is a performance knob, never a correctness requirement.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Number of worker processes to use.

    Precedence: explicit argument, then ``REPRO_WORKERS``, then 1
    (serial).  ``0`` and negative values mean "one per CPU".
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            return 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Ordered ``[fn(x) for x in items]``, fanned out across processes.

    *fn* must be a module-level (picklable) callable and the items and
    results must pickle.  With one worker, one item, or any executor
    failure, the plain serial comprehension runs instead.  *chunksize*
    batches items per inter-process message — worth raising when there
    are many small items (e.g. the sweep runner's (block, constraint)
    units).
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    import pickle
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=max(1, chunksize)))
    except (OSError, ImportError, NotImplementedError, PermissionError,
            BrokenProcessPool, pickle.PicklingError):
        # Environment/payload problems degrade to the serial path:
        # identical results, just slower.  Exceptions raised by *fn*
        # itself are real errors and propagate.
        return [fn(x) for x in items]


def cached_parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    lookup: Optional[Callable[[T], Optional[R]]] = None,
    store: Optional[Callable[[T, R], None]] = None,
) -> List[R]:
    """:func:`parallel_map` with a memo in front of the fan-out.

    Pool workers cannot mutate a parent-process memo, so every caller
    with a cache needs the same dance: resolve hits in-process, fan
    only the misses out, store the computed results afterwards.  This
    helper is that dance — *lookup* returns a cached result or ``None``
    (``lookup=None`` disables the memo entirely), *store* records a
    freshly computed one.  Results are identical to the uncached path.
    """
    if lookup is None:
        return parallel_map(fn, items, workers=workers)
    results: List[Optional[R]] = [None] * len(items)
    miss_indices: List[int] = []
    for i, item in enumerate(items):
        hit = lookup(item)
        if hit is not None:
            results[i] = hit
        else:
            miss_indices.append(i)
    computed = parallel_map(fn, [items[i] for i in miss_indices],
                            workers=workers)
    for i, result in zip(miss_indices, computed):
        if store is not None:
            store(items[i], result)
        results[i] = result
    return results

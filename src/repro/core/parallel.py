"""Process-parallel execution of independent per-block searches.

The identification of the best cut in one basic block is completely
independent of every other block, so the first round of each selection
strategy (one exhaustive search per DFG) parallelises embarrassingly.
This module provides the primitives the strategies and the sweep
runner need, together with the knob that controls them:

* ``workers=`` argument on ``select_iterative`` / ``select_optimal`` /
  ``select_area_constrained`` (and ``--workers`` on the CLI);
* the ``REPRO_WORKERS`` environment variable as the default when the
  argument is omitted.

:func:`scheduled_map` is the work-stealing scheduler: units are
dispatched **largest-first** (by a caller-supplied size hint) into a
shared process pool, completions are consumed **unordered**
(``as_completed``), and results are reassembled **in input order** —
so one oversized unit can no longer serialize the tail of a sweep
behind an arbitrary chunk boundary, while results stay bit-identical
to the serial path.  Per-unit wall time and the executing worker are
reported for telemetry (``SweepOutcome.unit_reports``).
:func:`parallel_map` keeps the classic ordered-``map`` surface on top
of the same scheduler.

The default is serial (``workers=1``): results are bit-identical either
way, but forking has a real cost, so parallelism is opt-in.  Any failure
to parallelise (no ``fork`` support, unpicklable payloads, sandboxed
environments without semaphores) degrades silently to the serial path —
parallelism is a performance knob, never a correctness requirement.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import asdict, dataclass
from typing import (
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "REPRO_WORKERS"

#: Infrastructure failures that degrade to the serial path.  Exceptions
#: raised by the mapped function itself are real errors and propagate.
_POOL_ERRORS: Tuple = (OSError, ImportError, NotImplementedError,
                       PermissionError)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Number of worker processes to use.

    Precedence: explicit argument, then ``REPRO_WORKERS``, then 1
    (serial).  ``0`` and negative values mean "one per CPU".  An
    unparsable ``REPRO_WORKERS`` value falls back to serial with a
    one-line warning on stderr — silently ignoring a typo'd knob cost
    real debugging time.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            print(f"warning: unparsable {WORKERS_ENV}={env!r} ignored; "
                  f"running serial (use an integer; 0 = one per CPU)",
                  file=sys.stderr)
            return 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


@dataclass
class UnitReport:
    """Telemetry of one scheduled unit: who ran it, for how long.

    ``status`` is ``"ok"`` for a completed unit or ``"error"`` for one
    the cluster leader quarantined after exhausting its attempts
    (``error`` then carries the last traceback/reason and ``attempts``
    how many times it was handed out)."""

    index: int
    size_hint: float
    elapsed_s: float
    worker: str
    status: str = "ok"
    attempts: int = 1
    error: Optional[str] = None

    def as_dict(self) -> dict:
        """Flat JSON-ready record (the sweep artifact's telemetry)."""
        return asdict(self)


def _dispatch_order(count: int,
                    size_hints: Optional[Sequence[float]]) -> List[int]:
    """Unit indexes in dispatch order: largest hint first (stable on
    ties, so equal-sized units keep input order); input order when no
    hints are given."""
    if size_hints is None:
        return list(range(count))
    return sorted(range(count), key=lambda i: (-size_hints[i], i))


def _timed_unit(job: Tuple) -> Tuple:
    """Module-level pool entry: run one unit, clock it, name the
    worker.  Must stay picklable (it crosses the process boundary)."""
    fn, index, item = job
    start = time.perf_counter()
    result = fn(item)
    return index, result, time.perf_counter() - start, f"pid{os.getpid()}"


def scheduled_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    size_hints: Optional[Sequence[float]] = None,
) -> Tuple[List[R], List[UnitReport]]:
    """Work-stealing ``map``: unordered completion, ordered results.

    Units are submitted largest-first (by *size_hints*; input order
    without hints) into one process pool whose idle workers pull the
    next pending unit — dynamic load balancing, so a skewed unit-size
    distribution keeps every worker busy instead of serializing the
    tail behind the biggest unit.  Results are reassembled in input
    order, bit-identical to ``[fn(x) for x in items]``; the second
    return value reports per-unit wall time and worker for telemetry.

    *fn* must be a module-level (picklable) callable.  With one
    worker, one item, or any pool-infrastructure failure, the serial
    path runs instead (identical results, ``worker="serial"``).
    """
    workers = resolve_workers(workers)
    order = _dispatch_order(len(items), size_hints)

    def _serial() -> Tuple[List[R], List[UnitReport]]:
        results: List[Optional[R]] = [None] * len(items)
        reports: List[UnitReport] = []
        for index in order:
            start = time.perf_counter()
            results[index] = fn(items[index])
            reports.append(UnitReport(
                index=index,
                size_hint=(float(size_hints[index])
                           if size_hints is not None else 0.0),
                elapsed_s=time.perf_counter() - start,
                worker="serial"))
        return results, reports  # type: ignore[return-value]

    if workers <= 1 or len(items) <= 1:
        return _serial()

    import pickle
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    results: List[Optional[R]] = [None] * len(items)
    reports: List[UnitReport] = []
    try:
        with ProcessPoolExecutor(
                max_workers=min(workers, len(items))) as pool:
            futures = [pool.submit(_timed_unit, (fn, index, items[index]))
                       for index in order]
            for future in as_completed(futures):
                index, result, elapsed, worker = future.result()
                results[index] = result
                reports.append(UnitReport(
                    index=index,
                    size_hint=(float(size_hints[index])
                               if size_hints is not None else 0.0),
                    elapsed_s=elapsed,
                    worker=worker))
    except (BrokenProcessPool, pickle.PicklingError,
            AttributeError) + _POOL_ERRORS:
        # AttributeError covers multiprocessing's refusal to pickle
        # local callables (it raises that, not PicklingError).
        # Environment/payload problems degrade to the serial path:
        # identical results, just slower.  (Units are pure functions of
        # their item, so re-running any that already completed in the
        # pool cannot change the outcome.)
        return _serial()
    return results, reports  # type: ignore[return-value]


def _apply_chunk(job: Tuple) -> List:
    """Module-level pool entry for :func:`parallel_map`'s chunking:
    map *fn* over one chunk of items in order."""
    fn, chunk = job
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Ordered ``[fn(x) for x in items]``, fanned out across processes.

    A thin wrapper over :func:`scheduled_map`: items are grouped into
    *chunksize*-sized units (worth raising when there are many small
    items — one inter-process message per chunk), dispatched in input
    order, completed unordered, and flattened back to input order.
    *fn* must be a module-level (picklable) callable and the items and
    results must pickle.  With one worker, one item, or any executor
    failure, the plain serial comprehension runs instead.
    """
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    chunksize = max(1, chunksize)
    chunks = [(fn, list(items[i:i + chunksize]))
              for i in range(0, len(items), chunksize)]
    grouped, _reports = scheduled_map(_apply_chunk, chunks,
                                      workers=workers)
    return [result for group in grouped for result in group]


def cached_parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    lookup: Optional[Callable[[T], Optional[R]]] = None,
    store: Optional[Callable[[T, R], None]] = None,
) -> List[R]:
    """:func:`parallel_map` with a memo in front of the fan-out.

    Pool workers cannot mutate a parent-process memo, so every caller
    with a cache needs the same dance: resolve hits in-process, fan
    only the misses out, store the computed results afterwards.  This
    helper is that dance — *lookup* returns a cached result or ``None``
    (``lookup=None`` disables the memo entirely), *store* records a
    freshly computed one.  Results are identical to the uncached path.
    """
    if lookup is None:
        return parallel_map(fn, items, workers=workers)
    results: List[Optional[R]] = [None] * len(items)
    miss_indices: List[int] = []
    for i, item in enumerate(items):
        hit = lookup(item)
        if hit is not None:
            results[i] = hit
        else:
            miss_indices.append(i)
    computed = parallel_map(fn, [items[i] for i in miss_indices],
                            workers=workers)
    for i, result in zip(miss_indices, computed):
        if store is not None:
            store(items[i], result)
        results[i] = result
    return results

"""Cuts (candidate custom instructions) and microarchitectural constraints.

A :class:`Cut` is an immutable record of a subgraph selected inside one
basic-block DFG, together with its measured properties (``IN``/``OUT``
counts, convexity, merit).  :func:`evaluate_cut` computes these properties
from scratch — it is the *reference* semantics that the incremental search
must agree with (and is property-tested against it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

from ..hwmodel.latency import CostModel
from ..hwmodel.merit import cut_hardware_cycles, cut_merit, cut_software_cycles
from ..ir.dfg import DataFlowGraph


@dataclass(frozen=True)
class Constraints:
    """The paper's microarchitectural constraints (Problem 1).

    Attributes:
        nin: register-file read ports usable by one custom instruction
            (``IN(S) <= nin``).
        nout: register-file write ports (``OUT(S) <= nout``).
        ninstr: maximum number of custom instructions to select
            (Problem 2); only meaningful for selection algorithms.
    """

    nin: int
    nout: int
    ninstr: int = 1

    def __post_init__(self) -> None:
        if self.nin < 1 or self.nout < 1 or self.ninstr < 1:
            raise ValueError("constraints must be positive")

    def describe(self) -> str:
        """Human-readable one-liner used by every report header."""
        return f"Nin={self.nin}, Nout={self.nout}, Ninstr={self.ninstr}"


@dataclass(frozen=True)
class Cut:
    """A candidate custom instruction: a set of DFG nodes plus metrics."""

    dfg: DataFlowGraph
    nodes: FrozenSet[int]
    num_inputs: int
    num_outputs: int
    convex: bool
    merit: float
    software_cycles: float
    hardware_cycles: int

    @property
    def size(self) -> int:
        """Number of DFG nodes (operations) inside the cut."""
        return len(self.nodes)

    def satisfies(self, constraints: Constraints) -> bool:
        """True when the cut is convex and fits the register-file port
        budget (``IN(S) <= Nin`` and ``OUT(S) <= Nout``)."""
        return (self.convex
                and self.num_inputs <= constraints.nin
                and self.num_outputs <= constraints.nout)

    def node_labels(self) -> List[str]:
        """Labels of the member nodes in index order (for reports)."""
        return [self.dfg.nodes[i].label for i in sorted(self.nodes)]

    def is_connected(self) -> bool:
        """True if the cut's nodes form one weakly connected component."""
        members = set(self.nodes)
        if not members:
            return True
        start = next(iter(members))
        seen = {start}
        stack = [start]
        while stack:
            i = stack.pop()
            for x in self.dfg.succs[i] + self.dfg.preds[i]:
                if x in members and x not in seen:
                    seen.add(x)
                    stack.append(x)
        return seen == members

    def describe(self) -> str:
        """One-line summary: size, connectivity, I/O counts and merit."""
        kind = "connected" if self.is_connected() else "disconnected"
        return (f"cut of {self.size} nodes in {self.dfg.name} "
                f"({kind}; IN={self.num_inputs}, OUT={self.num_outputs}, "
                f"sw={self.software_cycles:g}cy, hw={self.hardware_cycles}cy,"
                f" merit={self.merit:g})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cut {sorted(self.nodes)} merit={self.merit:g}>"


def evaluate_cut(dfg: DataFlowGraph, nodes: Iterable[int],
                 model: CostModel) -> Cut:
    """Compute all properties of the cut *nodes* from first principles."""
    members = frozenset(nodes)
    for i in members:
        if i < 0 or i >= dfg.n:
            raise ValueError(f"node index {i} out of range for {dfg.name}")
    convex = dfg.is_convex(members)
    inputs = dfg.cut_inputs(members)
    outputs = dfg.cut_outputs(members)
    legal_ops = all(not dfg.nodes[i].forbidden for i in members)
    if members and legal_ops:
        sw = cut_software_cycles(dfg, members, model)
        hw = cut_hardware_cycles(dfg, members, model)
        merit = cut_merit(dfg, members, model)
    else:
        sw, hw, merit = 0.0, 0, 0.0 if not members else -math.inf
    return Cut(
        dfg=dfg,
        nodes=members,
        num_inputs=len(inputs),
        num_outputs=len(outputs),
        convex=convex,
        merit=merit,
        software_cycles=sw,
        hardware_cycles=hw,
    )


def cut_is_feasible(dfg: DataFlowGraph, nodes: Iterable[int],
                    constraints: Constraints) -> bool:
    """Reference feasibility test: legal ops, convex, within I/O ports."""
    members = frozenset(nodes)
    if any(dfg.nodes[i].forbidden for i in members):
        return False
    if not dfg.is_convex(members):
        return False
    if len(dfg.cut_inputs(members)) > constraints.nin:
        return False
    if len(dfg.cut_outputs(members)) > constraints.nout:
        return False
    return True

"""Simultaneous identification of ``M`` disjoint cuts (Section 6.2, Fig. 9).

Generalises the single-cut search: the tree becomes ``(M+1)``-ary — at
level ``i``, node ``i`` either stays in software (branch 0) or joins cut
``k`` (branch ``k``).  Each cut maintains its own incremental state; the
monotone output/convexity checks prune per cut exactly as in the single-cut
algorithm.

Cuts are exchangeable, so the search canonicalises labels: a node may open
cut ``k`` only when cuts ``1..k-1`` are already nonempty.  This removes a
factorial symmetry factor without losing any solution.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut, evaluate_cut
from .single_cut import SearchLimits, SearchStats, _ceil_cycles


@dataclass
class MultiCutResult:
    """Outcome of :func:`find_best_cuts`."""

    cuts: List[Cut]
    total_merit: float
    stats: SearchStats
    complete: bool = True


class _BudgetExhausted(Exception):
    pass


class _CutState:
    """Incremental state of one of the M cuts being grown."""

    __slots__ = ("dfg", "model", "n", "succs", "producers", "forced_out",
                 "sw", "hw", "in_s", "reach", "bad", "refs", "in_count",
                 "out_count", "out_flag", "cpl", "cp_max", "cp_stack",
                 "sw_sum", "members")

    def __init__(self, dfg: DataFlowGraph, model: CostModel,
                 sw: List[float], hw: List[float],
                 producers: List[List[int]]) -> None:
        n = dfg.n
        self.dfg = dfg
        self.model = model
        self.n = n
        self.succs = dfg.succs
        self.producers = producers
        self.forced_out = [node.forced_out for node in dfg.nodes]
        self.sw = sw
        self.hw = hw
        self.in_s = bytearray(n)
        self.reach = bytearray(n)
        self.bad = bytearray(n)
        self.refs = [0] * (n + len(dfg.input_vars))
        self.in_count = 0
        self.out_count = 0
        self.out_flag = bytearray(n)
        self.cpl = [0.0] * n
        self.cp_max = 0.0
        self.cp_stack: List[float] = []
        self.sw_sum = 0.0
        self.members: List[int] = []

    def include(self, v: int) -> bool:
        succs = self.succs[v]
        in_s = self.in_s
        reach = self.reach
        bad = self.bad
        is_bad = False
        for s in succs:
            if bad[s] or (not in_s[s] and reach[s]):
                is_bad = True
                break
        reach[v] = 1
        bad[v] = 1 if is_bad else 0

        is_out = self.forced_out[v]
        if not is_out:
            for s in succs:
                if not in_s[s]:
                    is_out = True
                    break
        self.out_flag[v] = 1 if is_out else 0
        if is_out:
            self.out_count += 1

        refs = self.refs
        delta = 0
        for p in self.producers[v]:
            refs[p] += 1
            if refs[p] == 1:
                delta += 1
        if refs[v] > 0:
            delta -= 1
        self.in_count += delta

        best = 0.0
        cpl = self.cpl
        for s in succs:
            if in_s[s] and cpl[s] > best:
                best = cpl[s]
        cpl[v] = self.hw[v] + best
        self.cp_stack.append(self.cp_max)
        if cpl[v] > self.cp_max:
            self.cp_max = cpl[v]

        self.sw_sum += self.sw[v]
        in_s[v] = 1
        self.members.append(v)
        return not is_bad

    def undo_include(self, v: int) -> None:
        self.members.pop()
        self.in_s[v] = 0
        self.sw_sum -= self.sw[v]
        self.cp_max = self.cp_stack.pop()
        refs = self.refs
        for p in self.producers[v]:
            refs[p] -= 1
            if refs[p] == 0:
                self.in_count -= 1
        if refs[v] > 0:
            self.in_count += 1
        if self.out_flag[v]:
            self.out_count -= 1
            self.out_flag[v] = 0

    def decide_exclude(self, v: int) -> None:
        succs = self.succs[v]
        in_s = self.in_s
        reach = self.reach
        bad = self.bad
        r = 0
        b = 0
        for s in succs:
            if reach[s]:
                r = 1
                if bad[s] or not in_s[s]:
                    b = 1
                    break
        reach[v] = r
        bad[v] = b

    def merit(self) -> float:
        return self.dfg.weight * (self.sw_sum - _ceil_cycles(self.cp_max))


class _MultiCutSearch:
    def __init__(self, dfg: DataFlowGraph, constraints: Constraints,
                 num_cuts: int, model: CostModel,
                 limits: Optional[SearchLimits]) -> None:
        if num_cuts < 1:
            raise ValueError("num_cuts must be >= 1")
        self.dfg = dfg
        self.constraints = constraints
        self.m = num_cuts
        self.model = model
        self.limits = limits or SearchLimits()
        self.forbidden = [node.forbidden for node in dfg.nodes]
        sw = [0.0 if node.forbidden else model.sw(node)
              for node in dfg.nodes]
        hw = [math.inf if node.forbidden else model.hw(node)
              for node in dfg.nodes]
        producers = [dfg.producers_of(i) for i in range(dfg.n)]
        self.states = [
            _CutState(dfg, model, sw, hw, producers)
            for _ in range(num_cuts)
        ]
        self.open_cuts = 0        # number of cuts that have a member
        self.best_total = 0.0
        self.best_sets: Optional[List[Tuple[int, ...]]] = None
        self.stats = SearchStats(graph_nodes=dfg.n)
        self.complete = True

    def _maybe_update_best(self) -> None:
        nin = self.constraints.nin
        total = 0.0
        for state in self.states:
            if not state.members:
                continue
            if state.in_count > nin:
                return
            total += state.merit()
        if total > self.best_total:
            self.best_total = total
            self.best_sets = [tuple(state.members)
                              for state in self.states]
            self.stats.best_updates += 1

    def _search(self, i: int) -> None:
        if i == self.dfg.n:
            return
        if not self.forbidden[i]:
            # Branch k: node i joins cut k.  Canonical: only the first
            # empty cut may be opened.
            max_k = min(self.m, self.open_cuts + 1)
            for k in range(max_k):
                state = self.states[k]
                self.stats.cuts_considered += 1
                limit = self.limits.max_considered
                if limit is not None and self.stats.cuts_considered > limit:
                    self.complete = False
                    raise _BudgetExhausted()
                opened = not state.members
                ok = state.include(i)
                out_ok = state.out_count <= self.constraints.nout
                if ok and out_ok:
                    self.stats.cuts_feasible += 1
                    if opened:
                        self.open_cuts += 1
                    for other_k, other in enumerate(self.states):
                        if other_k != k:
                            other.decide_exclude(i)
                    self._maybe_update_best()
                    self._search(i + 1)
                    if opened:
                        self.open_cuts -= 1
                else:
                    self.stats.cuts_infeasible += 1
                state.undo_include(i)
        # Branch 0: node i stays in software.
        for state in self.states:
            state.decide_exclude(i)
        self._search(i + 1)

    def run(self) -> MultiCutResult:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * self.dfg.n + 1000))
        try:
            self._search(0)
        except _BudgetExhausted:
            pass
        finally:
            sys.setrecursionlimit(old_limit)
        cuts: List[Cut] = []
        if self.best_sets is not None:
            for members in self.best_sets:
                if members:
                    cuts.append(evaluate_cut(self.dfg, members, self.model))
        cuts.sort(key=lambda c: -c.merit)
        return MultiCutResult(
            cuts=cuts,
            total_merit=self.best_total,
            stats=self.stats,
            complete=self.complete,
        )


def find_best_cuts(
    dfg: DataFlowGraph,
    constraints: Constraints,
    num_cuts: int,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
) -> MultiCutResult:
    """Find up to *num_cuts* disjoint cuts of *dfg* maximising the merit
    sum, each cut individually satisfying *constraints* (Section 6.2)."""
    model = model or CostModel()
    return _MultiCutSearch(dfg, constraints, num_cuts, model, limits).run()

"""Simultaneous identification of ``M`` disjoint cuts (Section 6.2, Fig. 9).

Generalises the single-cut search: the tree becomes ``(M+1)``-ary — at
level ``i``, node ``i`` either stays in software (branch 0) or joins cut
``k`` (branch ``k``).  Each cut maintains its own incremental bitset state;
the monotone output/convexity checks prune per cut exactly as in the
single-cut algorithm.

Cuts are exchangeable, so the search canonicalises labels: a node may open
cut ``k`` only when cuts ``1..k-1`` are already nonempty.  This removes a
factorial symmetry factor without losing any solution.

The tree walk is the multi-cut mode of :mod:`repro.core.engine`; this
module provides the problem-level API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut, evaluate_cut
from .engine import SearchLimits, SearchStats, run_multi_cut

__all__ = ["MultiCutResult", "find_best_cuts"]


@dataclass
class MultiCutResult:
    """Outcome of :func:`find_best_cuts`."""

    cuts: List[Cut]
    total_merit: float
    stats: SearchStats
    complete: bool = True


def find_best_cuts(
    dfg: DataFlowGraph,
    constraints: Constraints,
    num_cuts: int,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    cache=None,
) -> MultiCutResult:
    """Find up to *num_cuts* disjoint cuts of *dfg* maximising the merit
    sum, each cut individually satisfying *constraints* (Section 6.2).

    *cache* is an optional memo (duck-typed ``get_multi``/``put_multi``,
    e.g. :class:`repro.explore.cache.SearchCache`); a hit skips the
    search and returns the identical result.
    """
    model = model or CostModel()
    if cache is not None:
        hit = cache.get_multi(dfg, constraints, num_cuts, model, limits)
        if hit is not None:
            return hit
    best_sets, best_total, stats, complete = run_multi_cut(
        dfg, constraints, num_cuts, model, limits)
    cuts: List[Cut] = []
    if best_sets is not None:
        for members in best_sets:
            if members:
                cuts.append(evaluate_cut(dfg, members, model))
    cuts.sort(key=lambda c: -c.merit)
    result = MultiCutResult(
        cuts=cuts,
        total_merit=best_total,
        stats=stats,
        complete=complete,
    )
    if cache is not None:
        cache.put_multi(dfg, constraints, num_cuts, model, limits, result)
    return result

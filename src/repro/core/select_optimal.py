"""Optimal selection (Section 6.2, Fig. 10 of the paper).

For each basic block ``b`` let ``V_b(m)`` be the best total merit of ``m``
simultaneous disjoint cuts, computed exactly by the multi-cut search.  The
outer loop is a greedy ascent over the per-block marginal improvements
``V_b(m_b + 1) - V_b(m_b)``; since every per-block evaluation is *exact*,
the paper shows this converges to the optimal allocation after at most
``Ninstr + Nbb - 1`` multi-cut identifications.

The multi-cut search is exponential in the strong sense (``(M+1)^n``); the
``max_nodes`` guard reproduces the paper's observation that Optimal could
not be run on the largest adpcm-decode block, failing *explicitly* instead
of silently hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut
from .multi_cut import MultiCutResult, find_best_cuts
from .parallel import cached_parallel_map
from .selection import SelectionResult, make_result, merge_stats
from .single_cut import SearchLimits, SearchStats


def _search_one_block(job: Tuple) -> MultiCutResult:
    """Module-level worker: one per-block multi-cut search (picklable)."""
    dfg, constraints, num_cuts, model, limits = job
    return find_best_cuts(dfg, constraints, num_cuts, model, limits)


class BlockTooLargeError(RuntimeError):
    """Raised when optimal selection is attempted on an oversized block."""


@dataclass
class _BlockState:
    dfg: DataFlowGraph
    committed: int = 0          # m_b — instructions granted to this block
    value: float = 0.0          # V_b(m_b)
    next_value: float = 0.0     # V_b(m_b + 1)
    next_result: Optional[MultiCutResult] = None

    @property
    def improvement(self) -> float:
        return self.next_value - self.value


def select_optimal(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    max_nodes: Optional[int] = 40,
    workers: Optional[int] = None,
    cache=None,
) -> SelectionResult:
    """Optimal selection of up to ``constraints.ninstr`` cuts.

    Args:
        dfgs: one DFG per (profiled) basic block.
        constraints: I/O port limits and the instruction budget.
        model: cost model for the merit function.
        limits: optional search budget per identification call.
        max_nodes: refuse blocks larger than this (``None`` disables the
            guard).  Raises :class:`BlockTooLargeError`.
        workers: processes for the per-block ``V_b(1)`` round (default:
            the ``REPRO_WORKERS`` environment variable, else serial).
        cache: optional identification memo (e.g. ``repro.explore.
            SearchCache``); hits skip multi-cut searches, results are
            bit-identical either way.
    """
    model = model or CostModel()
    if max_nodes is not None:
        for dfg in dfgs:
            if dfg.n > max_nodes:
                raise BlockTooLargeError(
                    f"block {dfg.name} has {dfg.n} nodes (> {max_nodes}); "
                    f"optimal selection is infeasible — use "
                    f"select_iterative instead (cf. Section 8 of the "
                    f"paper: Optimal could not run on adpcmdecode)")

    stats = SearchStats()
    complete = True
    first_round = cached_parallel_map(
        _search_one_block,
        [(dfg, constraints, 1, model, limits) for dfg in dfgs],
        workers=workers,
        lookup=(lambda job: cache.get_multi(job[0], constraints, 1, model,
                                            limits))
        if cache is not None else None,
        store=lambda job, result: cache.put_multi(
            job[0], constraints, 1, model, limits, result),
    )
    states: List[_BlockState] = []
    for dfg, result in zip(dfgs, first_round):
        merge_stats(stats, result.stats)
        complete = complete and result.complete
        states.append(_BlockState(
            dfg=dfg,
            committed=0,
            value=0.0,
            next_value=result.total_merit,
            next_result=result,
        ))

    granted = 0
    while granted < constraints.ninstr:
        best = max(states, key=lambda s: s.improvement, default=None)
        if best is None or best.improvement <= 0:
            break
        best.committed += 1
        best.value = best.next_value
        granted += 1
        if granted >= constraints.ninstr:
            break
        result = find_best_cuts(
            best.dfg, constraints, best.committed + 1, model, limits,
            cache=cache)
        merge_stats(stats, result.stats)
        complete = complete and result.complete
        best.next_value = result.total_merit
        best.next_result = result

    # Materialise the committed cuts: re-run each block at its final m_b.
    cuts: List[Cut] = []
    for state in states:
        if state.committed == 0:
            continue
        result = find_best_cuts(
            state.dfg, constraints, state.committed, model, limits,
            cache=cache)
        merge_stats(stats, result.stats)
        complete = complete and result.complete
        cuts.extend(result.cuts)
    cuts.sort(key=lambda c: -c.merit)
    cuts = cuts[:constraints.ninstr]

    return make_result(
        algorithm="Optimal",
        constraints=constraints,
        cuts=cuts,
        dfgs=dfgs,
        model=model,
        stats=stats,
        complete=complete,
    )

"""Brute-force oracle: exhaustive enumeration of all ``2^n`` cuts.

Deliberately naive and independent of the optimised search — used by the
test suite to validate :mod:`repro.core.single_cut` and
:mod:`repro.core.multi_cut` on small graphs, and by nothing else.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut, cut_is_feasible, evaluate_cut


def all_feasible_cuts(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
) -> List[Cut]:
    """Every feasible nonempty cut, by sheer enumeration (exponential)."""
    model = model or CostModel()
    selectable = [i for i in range(dfg.n) if not dfg.nodes[i].forbidden]
    cuts: List[Cut] = []
    for r in range(1, len(selectable) + 1):
        for combo in itertools.combinations(selectable, r):
            if cut_is_feasible(dfg, combo, constraints):
                cuts.append(evaluate_cut(dfg, combo, model))
    return cuts


def best_cut_bruteforce(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
) -> Optional[Cut]:
    """The maximal-merit feasible cut with positive merit, or ``None``."""
    best: Optional[Cut] = None
    for cut in all_feasible_cuts(dfg, constraints, model):
        if cut.merit <= 0:
            continue
        if best is None or cut.merit > best.merit:
            best = cut
    return best


def best_disjoint_cuts_bruteforce(
    dfg: DataFlowGraph,
    constraints: Constraints,
    num_cuts: int,
    model: Optional[CostModel] = None,
) -> Tuple[List[Cut], float]:
    """Optimal set of up to *num_cuts* disjoint feasible cuts maximising the
    merit sum (each cut individually feasible).  Exponential in the
    extreme — only for tiny test graphs."""
    model = model or CostModel()
    feasible = [c for c in all_feasible_cuts(dfg, constraints, model)
                if c.merit > 0]
    best_cuts: List[Cut] = []
    best_total = 0.0

    def extend(start: int, chosen: List[Cut], used: set,
               total: float) -> None:
        nonlocal best_cuts, best_total
        if total > best_total:
            best_total = total
            best_cuts = list(chosen)
        if len(chosen) == num_cuts:
            return
        for k in range(start, len(feasible)):
            cand = feasible[k]
            if used & cand.nodes:
                continue
            chosen.append(cand)
            extend(k + 1, chosen, used | cand.nodes, total + cand.merit)
            chosen.pop()

    extend(0, [], set(), 0.0)
    return best_cuts, best_total

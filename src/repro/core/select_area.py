"""Selection under an area budget — the paper's Section 9 future work.

The paper selects the ``Ninstr`` best cuts regardless of silicon cost and
only reports area after the fact.  Its conclusions name "instruction
selection under area constraint" as the natural next problem; this module
implements it on top of the same identification machinery:

1. A **candidate pool** is built per basic block by running the iterative
   identification to exhaustion (every profitable cut, in discovery
   order, each collapsed before finding the next — so candidates from one
   block never overlap).
2. Candidates then enter a **0/1 knapsack**: maximise total merit subject
   to ``sum(area) <= area_budget`` (areas discretised to a configurable
   resolution).  The knapsack is solved exactly by dynamic programming;
   a greedy merit-density heuristic is also provided for comparison and
   as the fallback for very large pools.

The result type is the ordinary :class:`SelectionResult`, so area-aware
selections plug into every existing report and the cycle simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..hwmodel.latency import CostModel
from ..hwmodel.merit import cut_area
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut
from .parallel import cached_parallel_map
from .selection import SelectionResult, make_result, merge_stats
from .single_cut import SearchLimits, SearchStats, find_best_cut


@dataclass(frozen=True)
class AreaCandidate:
    """A candidate instruction with its silicon price tag."""

    cut: Cut
    area: float

    @property
    def merit(self) -> float:
        return self.cut.merit

    @property
    def density(self) -> float:
        """Merit per unit area (cycles saved per MAC-equivalent)."""
        if self.area <= 0:
            return math.inf
        return self.merit / self.area


def _block_candidates(job: Tuple) -> Tuple[List[AreaCandidate], SearchStats]:
    """Module-level worker: exhaust one block's candidate pool
    (picklable; independent of every other block).

    An optional sixth job element is an identification memo threaded
    into the per-round searches — the sweep warm phase uses it so the
    chain it computes here also serves the iterative algorithm.
    """
    dfg, constraints, model, limits, max_per_block = job[:5]
    cache = job[5] if len(job) > 5 else None
    stats = SearchStats()
    candidates: List[AreaCandidate] = []
    current = dfg
    for _ in range(max_per_block):
        result = find_best_cut(current, constraints, model, limits,
                               cache=cache)
        merge_stats(stats, result.stats)
        if result.cut is None or result.cut.merit <= 0:
            break
        area = cut_area(result.cut.dfg, result.cut.nodes, model)
        candidates.append(AreaCandidate(cut=result.cut, area=area))
        current = current.collapse(result.cut.nodes,
                                   label=f"area{len(candidates)}")
    return candidates, stats


def enumerate_candidates(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    model: CostModel,
    limits: Optional[SearchLimits] = None,
    max_per_block: int = 32,
    stats: Optional[SearchStats] = None,
    workers: Optional[int] = None,
    cache=None,
) -> List[AreaCandidate]:
    """Exhaust the iterative identifier on every block, optionally
    fanning the independent per-block pools out over processes.

    Returns non-overlapping candidates (cuts from the same block never
    share operations, by construction of the collapse step).  *cache*
    is an optional memo (duck-typed ``get_pool``/``put_pool``); hits
    skip a block's searches entirely, with identical results.
    """
    per_block = cached_parallel_map(
        _block_candidates,
        [(dfg, constraints, model, limits, max_per_block) for dfg in dfgs],
        workers=workers,
        lookup=(lambda job: cache.get_pool(job[0], constraints, model,
                                           limits, max_per_block))
        if cache is not None else None,
        store=lambda job, result: cache.put_pool(
            job[0], constraints, model, limits, max_per_block,
            result[0], result[1]),
    )
    candidates: List[AreaCandidate] = []
    for block_cands, block_stats in per_block:
        if stats is not None:
            merge_stats(stats, block_stats)
        candidates.extend(block_cands)
    return candidates


def knapsack_select(
    candidates: Sequence[AreaCandidate],
    area_budget: float,
    resolution: float = 0.01,
    max_count: Optional[int] = None,
) -> List[AreaCandidate]:
    """Exact 0/1 knapsack over the candidates (DP on discretised area).

    Args:
        candidates: the pool.
        area_budget: maximum total area, in MAC-equivalents.
        resolution: area discretisation step (MACs); areas round *up* so
            the budget is never exceeded.
        max_count: optional cardinality cap (``Ninstr``), enforced
            *inside* the DP state — truncating the unconstrained
            solution afterwards can be arbitrarily suboptimal (it keeps
            the highest-merit members of the wrong set).
    """
    if area_budget < 0:
        raise ValueError("area budget must be non-negative")
    capacity = int(math.floor(area_budget / resolution + 1e-9))
    weights = [max(0, int(math.ceil(c.area / resolution - 1e-9)))
               for c in candidates]
    # States beyond the summed item weight are unreachable; trimming
    # them keeps the DP small when the budget is effectively unlimited.
    capacity = min(capacity, sum(weights))

    profitable = sum(1 for c in candidates if c.merit > 0)
    if max_count is None or max_count >= profitable:
        # Cardinality cap vacuous: classic one-dimensional DP.
        best = [0.0] * (capacity + 1)
        chosen: List[Tuple[int, ...]] = [()] * (capacity + 1)
        for idx, cand in enumerate(candidates):
            weight = weights[idx]
            if cand.merit <= 0:
                continue
            for w in range(capacity, weight - 1, -1):
                alternative = best[w - weight] + cand.merit
                if alternative > best[w]:
                    best[w] = alternative
                    chosen[w] = chosen[w - weight] + (idx,)
        top = max(range(capacity + 1), key=lambda w: best[w])
        return [candidates[i] for i in chosen[top]]

    # dp[k][w] = best merit of exactly <= k items within weight w; the
    # count is a DP dimension so the optimum under *both* budgets is
    # exact.
    best2 = [[0.0] * (capacity + 1) for _ in range(max_count + 1)]
    chosen2: List[List[Tuple[int, ...]]] = [
        [()] * (capacity + 1) for _ in range(max_count + 1)]
    for idx, cand in enumerate(candidates):
        weight = weights[idx]
        if cand.merit <= 0:
            continue
        for k in range(max_count, 0, -1):
            row, prev = best2[k], best2[k - 1]
            crow, cprev = chosen2[k], chosen2[k - 1]
            for w in range(capacity, weight - 1, -1):
                alternative = prev[w - weight] + cand.merit
                if alternative > row[w]:
                    row[w] = alternative
                    crow[w] = cprev[w - weight] + (idx,)
    best_k, best_w = 0, 0
    for k in range(max_count + 1):
        for w in range(capacity + 1):
            if best2[k][w] > best2[best_k][best_w]:
                best_k, best_w = k, w
    return [candidates[i] for i in chosen2[best_k][best_w]]


def greedy_select(
    candidates: Sequence[AreaCandidate],
    area_budget: float,
    max_count: Optional[int] = None,
) -> List[AreaCandidate]:
    """Merit-density greedy: cheap, and a useful baseline for the DP.
    ``max_count`` stops the scan once that many candidates are picked."""
    remaining = area_budget
    picked: List[AreaCandidate] = []
    for cand in sorted(candidates, key=lambda c: -c.density):
        if max_count is not None and len(picked) >= max_count:
            break
        if cand.merit <= 0:
            continue
        if cand.area <= remaining + 1e-12:
            picked.append(cand)
            remaining -= cand.area
    return picked


def select_area_constrained(
    dfgs: Sequence[DataFlowGraph],
    constraints: Constraints,
    area_budget: float,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    method: str = "knapsack",
    max_per_block: int = 32,
    workers: Optional[int] = None,
    cache=None,
) -> SelectionResult:
    """Select cuts maximising merit under both port and area budgets.

    Args:
        dfgs: one DFG per profiled basic block.
        constraints: per-instruction port limits; ``ninstr`` still caps
            the number of instructions.
        area_budget: total silicon budget in MAC-equivalent units.
        method: ``"knapsack"`` (exact DP) or ``"greedy"`` (density
            heuristic).
        max_per_block: candidate-pool depth per basic block.
        workers: processes for the per-block candidate pools (default:
            the ``REPRO_WORKERS`` environment variable, else serial).
        cache: optional identification memo (e.g. ``repro.explore.
            SearchCache``) for the candidate pools.

    The ``ninstr`` cardinality cap is enforced *inside* the knapsack DP
    (and as a stop condition of the greedy scan) — never by truncating
    an unconstrained solution afterwards, which can be arbitrarily
    suboptimal.
    """
    model = model or CostModel()
    stats = SearchStats()
    pool = enumerate_candidates(dfgs, constraints, model, limits,
                                max_per_block=max_per_block,
                                stats=stats, workers=workers, cache=cache)
    if method == "knapsack":
        picked = knapsack_select(pool, area_budget,
                                 max_count=constraints.ninstr)
    elif method == "greedy":
        picked = greedy_select(pool, area_budget,
                               max_count=constraints.ninstr)
    else:
        raise ValueError(f"unknown method {method!r}")

    picked.sort(key=lambda c: -c.merit)
    return make_result(
        algorithm=f"AreaConstrained({method}, {area_budget:g} MAC)",
        constraints=constraints,
        cuts=[c.cut for c in picked],
        dfgs=dfgs,
        model=model,
        stats=stats,
    )

"""Exact single-cut identification — the paper's core algorithm (Fig. 6).

The search walks a binary tree: level ``i`` decides whether DFG node ``i``
joins the cut.  Nodes are numbered in reverse topological order (consumers
before producers), which makes two quantities *monotone* along any root-to-
leaf path of 1-branches:

* ``OUT(S)`` — once a node is inserted, all of its consumers have already
  been decided, so its status as an output of the cut is final and can only
  be added to, never removed;
* convexity — a violated convexity constraint can never be repaired by
  inserting nodes that appear later in the ordering (they are all
  *producers* of what is already in the cut).

Whenever the output-port constraint or the convexity constraint fails at a
tree node, the entire subtree below it is pruned.  The input constraint is
**not** monotone (adding a producer can remove inputs), so it only filters
which cuts may become the incumbent best solution.

The tree walk itself lives in :mod:`repro.core.engine`: an iterative
branch-and-bound whose incremental state (the refs/reach/bad/cpl
quantities described in DESIGN.md §5) is packed into Python-int bitsets,
so every per-node check is a handful of word-parallel bitwise operations.
This module provides the public problem-level API on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut, evaluate_cut
from .engine import SearchLimits, SearchStats, ceil_cycles, run_single_cut

_ceil_cycles = ceil_cycles      # backward-compatible alias

__all__ = [
    "SearchLimits", "SearchStats", "SearchResult",
    "find_best_cut", "enumerate_feasible_cuts", "search_statistics",
]


@dataclass
class SearchResult:
    """Outcome of :func:`find_best_cut`."""

    cut: Optional[Cut]
    stats: SearchStats
    complete: bool = True

    @property
    def merit(self) -> float:
        """Merit (estimated saved cycles) of the best cut, 0 if none."""
        return self.cut.merit if self.cut is not None else 0.0


def find_best_cut(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    cache=None,
) -> SearchResult:
    """Find the maximal-merit convex cut of *dfg* under *constraints*.

    This is Problem 1 of the paper, solved exactly (unless *limits* stops
    the search early, which is reported via ``SearchResult.complete``).
    Only cuts with strictly positive merit are returned; ``cut`` is ``None``
    when no profitable feasible cut exists.

    *cache* is an optional memo (duck-typed ``get_single``/``put_single``,
    e.g. :class:`repro.explore.cache.SearchCache`).  A hit returns the
    identical result without re-running the search; the cache never
    changes what is returned.
    """
    model = model or CostModel()
    if cache is not None:
        hit = cache.get_single(dfg, constraints, model, limits)
        if hit is not None:
            return hit
    best_nodes, _, stats, complete = run_single_cut(
        dfg, constraints, model, limits)
    cut = None
    if best_nodes is not None:
        cut = evaluate_cut(dfg, best_nodes, model)
    result = SearchResult(cut=cut, stats=stats, complete=complete)
    if cache is not None:
        cache.put_single(dfg, constraints, model, limits, result)
    return result


def enumerate_feasible_cuts(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
) -> Iterator[Tuple[Tuple[int, ...], float]]:
    """Yield every feasible nonempty cut and its merit.

    Exponential — intended for tests and for small motivating examples.
    The cuts are produced in the order the Fig. 6 search visits them.
    """
    model = model or CostModel()
    collected: List[Tuple[Tuple[int, ...], float]] = []

    def on_feasible(nodes: Tuple[int, ...], merit: float) -> None:
        collected.append((nodes, merit))

    run_single_cut(dfg, constraints, model, None, on_feasible=on_feasible)
    return iter(collected)


def search_statistics(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
) -> SearchStats:
    """Run the search purely for its statistics (Fig. 8 harness)."""
    return find_best_cut(dfg, constraints, model, limits).stats

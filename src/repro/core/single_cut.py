"""Exact single-cut identification — the paper's core algorithm (Fig. 6).

The search walks a binary tree: level ``i`` decides whether DFG node ``i``
joins the cut.  Nodes are numbered in reverse topological order (consumers
before producers), which makes two quantities *monotone* along any root-to-
leaf path of 1-branches:

* ``OUT(S)`` — once a node is inserted, all of its consumers have already
  been decided, so its status as an output of the cut is final and can only
  be added to, never removed;
* convexity — a violated convexity constraint can never be repaired by
  inserting nodes that appear later in the ordering (they are all
  *producers* of what is already in the cut).

Whenever the output-port constraint or the convexity constraint fails at a
tree node, the entire subtree below it is pruned.  The input constraint is
**not** monotone (adding a producer can remove inputs), so it only filters
which cuts may become the incumbent best solution.

All per-node work is O(degree): the implementation maintains, with an undo
stack, the incremental state described in DESIGN.md §5 —

* ``refs``: for every potential producer (internal node or external input
  variable), how many cut members currently read it; ``IN(S)`` is the
  number of producers with nonzero count that are not themselves in the cut;
* ``out_count``: running ``OUT(S)``;
* per-node reachability bits ``R`` (can reach a cut member) and ``B`` (can
  reach a cut member through at least one excluded node) — fixed at
  decision time because they only depend on already-decided descendants;
  including a node whose ``B`` bit is set makes the cut non-convex;
* ``cpl``: longest hardware-delay path from a member to any cut sink,
  giving the running critical path for the merit function.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from ..hwmodel.latency import CostModel
from ..ir.dfg import DataFlowGraph
from .cut import Constraints, Cut, evaluate_cut


@dataclass
class SearchStats:
    """Counters describing one identification run (cf. Figs. 7 and 8)."""

    graph_nodes: int = 0
    cuts_considered: int = 0   # tree nodes reached through a 1-branch
    cuts_feasible: int = 0     # passed output-port AND convexity checks
    cuts_infeasible: int = 0   # failed a monotone check (subtree pruned)
    best_updates: int = 0

    @property
    def cuts_eliminated(self) -> int:
        """Cuts never examined thanks to pruning (out of 2^n - 1)."""
        total = (1 << self.graph_nodes) - 1
        return total - self.cuts_considered


@dataclass(frozen=True)
class SearchLimits:
    """Optional budget for the exponential search.

    ``max_considered`` bounds the number of cuts examined; when exhausted
    the search stops early and the result is flagged incomplete.
    """

    max_considered: Optional[int] = None


@dataclass
class SearchResult:
    """Outcome of :func:`find_best_cut`."""

    cut: Optional[Cut]
    stats: SearchStats
    complete: bool = True

    @property
    def merit(self) -> float:
        return self.cut.merit if self.cut is not None else 0.0


class _BudgetExhausted(Exception):
    """Internal signal: stop the recursion, keep the incumbent."""


class _SingleCutSearch:
    """One invocation of the Fig. 6 algorithm on one DFG."""

    def __init__(self, dfg: DataFlowGraph, constraints: Constraints,
                 model: CostModel, limits: Optional[SearchLimits],
                 on_feasible: Optional[Callable] = None) -> None:
        self.dfg = dfg
        self.constraints = constraints
        self.model = model
        self.limits = limits or SearchLimits()
        self.on_feasible = on_feasible

        n = dfg.n
        self.n = n
        self.succs = dfg.succs
        self.forced_out = [node.forced_out for node in dfg.nodes]
        self.forbidden = [node.forbidden for node in dfg.nodes]
        self.sw = [0.0 if node.forbidden else model.sw(node)
                   for node in dfg.nodes]
        self.hw = [math.inf if node.forbidden else model.hw(node)
                   for node in dfg.nodes]
        # Unified producer ids: internal nodes keep their index, external
        # input variable j becomes n + j.
        self.producers = [dfg.producers_of(i) for i in range(n)]

        # Mutable search state.
        self.in_s = bytearray(n)
        self.reach = bytearray(n)       # R bit
        self.bad = bytearray(n)         # B bit
        self.refs = [0] * (n + len(dfg.input_vars))
        self.in_count = 0
        self.out_count = 0
        self.out_flag = bytearray(n)    # is node an output while included
        self.cpl = [0.0] * n
        self.cp_max = 0.0
        self.cp_stack: List[float] = []
        self.sw_sum = 0.0
        self.included: List[int] = []

        self.best_merit = 0.0           # only positive-merit cuts qualify
        self.best_nodes: Optional[Tuple[int, ...]] = None
        self.stats = SearchStats(graph_nodes=n)
        self.complete = True

    # ------------------------------------------------------------------
    # Incremental updates.
    # ------------------------------------------------------------------
    def _include(self, v: int) -> bool:
        """Insert node *v*; return True when the monotone checks (output
        ports, convexity) still hold."""
        succs = self.succs[v]
        in_s = self.in_s
        reach = self.reach
        bad = self.bad

        # Convexity bits (descendants of v are all decided).
        is_bad = False
        for s in succs:
            if bad[s] or (not in_s[s] and reach[s]):
                is_bad = True
                break
        reach[v] = 1
        bad[v] = 1 if is_bad else 0

        # Output count.
        is_out = self.forced_out[v]
        if not is_out:
            for s in succs:
                if not in_s[s]:
                    is_out = True
                    break
        self.out_flag[v] = 1 if is_out else 0
        if is_out:
            self.out_count += 1

        # Input count via producer reference counting.
        refs = self.refs
        delta = 0
        for p in self.producers[v]:
            refs[p] += 1
            if refs[p] == 1:
                delta += 1
        if refs[v] > 0:
            delta -= 1      # v itself is no longer an external producer
        self.in_count += delta

        # Hardware critical path.
        best = 0.0
        cpl = self.cpl
        for s in succs:
            if in_s[s] and cpl[s] > best:
                best = cpl[s]
        cpl[v] = self.hw[v] + best
        self.cp_stack.append(self.cp_max)
        if cpl[v] > self.cp_max:
            self.cp_max = cpl[v]

        self.sw_sum += self.sw[v]
        in_s[v] = 1
        self.included.append(v)

        convex_ok = not is_bad
        out_ok = self.out_count <= self.constraints.nout
        return convex_ok and out_ok

    def _undo_include(self, v: int) -> None:
        self.included.pop()
        self.in_s[v] = 0
        self.sw_sum -= self.sw[v]
        self.cp_max = self.cp_stack.pop()
        refs = self.refs
        # Exact inverse of the forward update: every producer whose count
        # drops to zero had contributed +1; a still-referenced v had
        # contributed -1.
        for p in self.producers[v]:
            refs[p] -= 1
            if refs[p] == 0:
                self.in_count -= 1
        if refs[v] > 0:
            self.in_count += 1
        if self.out_flag[v]:
            self.out_count -= 1
            self.out_flag[v] = 0

    def _decide_exclude(self, v: int) -> None:
        succs = self.succs[v]
        in_s = self.in_s
        reach = self.reach
        bad = self.bad
        r = 0
        b = 0
        # Invariant: bad[s] implies reach[s], so r is always set before an
        # early break on b.
        for s in succs:
            if reach[s]:
                r = 1
                if bad[s] or not in_s[s]:
                    b = 1
                    break
        reach[v] = r
        bad[v] = b

    # ------------------------------------------------------------------
    def _maybe_update_best(self) -> None:
        if self.in_count > self.constraints.nin:
            return
        merit = self.dfg.weight * (
            self.sw_sum - _ceil_cycles(self.cp_max))
        if self.on_feasible is not None:
            self.on_feasible(tuple(self.included), merit)
        if merit > self.best_merit:
            self.best_merit = merit
            self.best_nodes = tuple(self.included)
            self.stats.best_updates += 1

    def _search(self, i: int) -> None:
        if i == self.n:
            return
        if not self.forbidden[i]:
            self.stats.cuts_considered += 1
            limit = self.limits.max_considered
            if (limit is not None
                    and self.stats.cuts_considered > limit):
                self.complete = False
                raise _BudgetExhausted()
            ok = self._include(i)
            if ok:
                self.stats.cuts_feasible += 1
                self._maybe_update_best()
                self._search(i + 1)
            else:
                self.stats.cuts_infeasible += 1
            self._undo_include(i)
        self._decide_exclude(i)
        self._search(i + 1)
        # Excluded state needs no undo: R/B are recomputed at next decision.

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * self.n + 1000))
        try:
            self._search(0)
        except _BudgetExhausted:
            pass
        finally:
            sys.setrecursionlimit(old_limit)
        cut = None
        if self.best_nodes is not None:
            cut = evaluate_cut(self.dfg, self.best_nodes, self.model)
        return SearchResult(cut=cut, stats=self.stats,
                            complete=self.complete)


def _ceil_cycles(critical_path: float) -> int:
    """Cycles of a *nonempty* cut: at least one (the issue slot), else the
    ceiling of the critical path."""
    if critical_path <= 0.0:
        return 1
    return max(1, math.ceil(critical_path - 1e-9))


def find_best_cut(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
) -> SearchResult:
    """Find the maximal-merit convex cut of *dfg* under *constraints*.

    This is Problem 1 of the paper, solved exactly (unless *limits* stops
    the search early, which is reported via ``SearchResult.complete``).
    Only cuts with strictly positive merit are returned; ``cut`` is ``None``
    when no profitable feasible cut exists.
    """
    model = model or CostModel()
    search = _SingleCutSearch(dfg, constraints, model, limits)
    return search.run()


def enumerate_feasible_cuts(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
) -> Iterator[Tuple[Tuple[int, ...], float]]:
    """Yield every feasible nonempty cut and its merit.

    Exponential — intended for tests and for small motivating examples.
    The cuts are produced in the order the Fig. 6 search visits them.
    """
    model = model or CostModel()
    collected: List[Tuple[Tuple[int, ...], float]] = []

    def on_feasible(nodes: Tuple[int, ...], merit: float) -> None:
        collected.append((tuple(sorted(nodes)), merit))

    search = _SingleCutSearch(dfg, constraints, model, None,
                              on_feasible=on_feasible)
    search.run()
    return iter(collected)


def search_statistics(
    dfg: DataFlowGraph,
    constraints: Constraints,
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
) -> SearchStats:
    """Run the search purely for its statistics (Fig. 8 harness)."""
    return find_best_cut(dfg, constraints, model, limits).stats

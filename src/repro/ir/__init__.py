"""Intermediate representation: values, instructions, blocks, CFG and DFG."""

from .opcodes import (
    COMPARISON_OPS,
    NEGATED_COMPARISON,
    PURE_OPS,
    Opcode,
    is_afu_legal,
    is_memory,
    is_terminator,
    opinfo,
)
from .values import (
    Const,
    Operand,
    Reg,
    is_const,
    is_reg,
    to_signed,
    to_unsigned,
    wrap32,
)
from .instructions import (
    Instruction,
    binop,
    br,
    call,
    copy_reg,
    jmp,
    load,
    ret,
    select,
    store,
    unop,
)
from .function import (
    BasicBlock,
    Function,
    GlobalArray,
    Module,
    count_real_instructions,
)
from .cfg import (
    Liveness,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    successors,
    verify_function,
)
from .dfg import DataFlowGraph, DFGMasks, DFGNode, build_dfg, function_dfgs
from .printer import IRParseError, parse_module, print_module, roundtrip

__all__ = [
    "Opcode", "opinfo", "is_afu_legal", "is_memory", "is_terminator",
    "PURE_OPS", "COMPARISON_OPS", "NEGATED_COMPARISON",
    "Const", "Reg", "Operand", "is_reg", "is_const",
    "wrap32", "to_signed", "to_unsigned",
    "Instruction", "binop", "unop", "select", "load", "store", "call",
    "br", "jmp", "ret", "copy_reg",
    "BasicBlock", "Function", "GlobalArray", "Module",
    "count_real_instructions",
    "Liveness", "successors", "predecessors", "reachable_blocks",
    "reverse_postorder", "verify_function",
    "DataFlowGraph", "DFGMasks", "DFGNode", "build_dfg", "function_dfgs",
    "print_module", "parse_module", "roundtrip", "IRParseError",
]

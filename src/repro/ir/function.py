"""Basic blocks, functions, global arrays and modules.

A :class:`Function` is an ordered list of labelled :class:`BasicBlock`; the
first block is the entry.  Every block ends in exactly one terminator
instruction.  A :class:`Module` groups functions together with the global
arrays they address.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .instructions import Instruction
from .opcodes import Opcode
from .values import wrap32


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    def append(self, insn: Instruction) -> Instruction:
        if self.is_terminated:
            raise ValueError(
                f"block {self.label} is already terminated; cannot append "
                f"{insn}")
        self.instructions.append(insn)
        return insn

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    @property
    def body(self) -> List[Instruction]:
        """All instructions except the terminator."""
        if self.is_terminated:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> List[str]:
        term = self.terminator
        if term is None:
            return []
        return list(term.targets)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {insn}" for insn in self.instructions)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BasicBlock {self.label} ({len(self)} insns)>"


class Function:
    """A function: named parameters plus an ordered list of basic blocks."""

    def __init__(self, name: str, params: Sequence[str] = ()) -> None:
        self.name = name
        self.params: List[str] = list(params)
        self.blocks: List[BasicBlock] = []
        self._by_label: Dict[str, BasicBlock] = {}
        self._next_temp = 0
        self._next_label = 0

    # ------------------------------------------------------------------
    # Block management.
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, label: Optional[str] = None) -> BasicBlock:
        if label is None:
            label = self.new_label()
        if label in self._by_label:
            raise ValueError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        self.blocks.append(block)
        self._by_label[label] = block
        return block

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    def remove_block(self, label: str) -> None:
        block = self._by_label.pop(label)
        self.blocks.remove(block)

    def reindex(self) -> None:
        """Rebuild the label map after external surgery on ``blocks``."""
        self._by_label = {b.label: b for b in self.blocks}

    # ------------------------------------------------------------------
    # Name generation.
    # ------------------------------------------------------------------
    def new_temp(self, hint: str = "t") -> str:
        name = f"{hint}{self._next_temp}"
        self._next_temp += 1
        return name

    def new_label(self, hint: str = "bb") -> str:
        while True:
            label = f"{hint}{self._next_label}"
            self._next_label += 1
            if label not in self._by_label:
                return label

    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(self.params)}):"
        return "\n".join([header] + [str(b) for b in self.blocks])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class GlobalArray:
    """A module-level array of 32-bit integers.

    Scalars at global scope are modelled as arrays of size 1 by the frontend.
    """

    def __init__(self, name: str, size: int,
                 init: Optional[Iterable[int]] = None) -> None:
        if size <= 0:
            raise ValueError(f"array {name} must have positive size")
        self.name = name
        self.size = size
        values = [wrap32(v) for v in init] if init is not None else []
        if len(values) > size:
            raise ValueError(
                f"array {name}: {len(values)} initialisers for size {size}")
        values.extend([0] * (size - len(values)))
        self.init: List[int] = values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GlobalArray {self.name}[{self.size}]>"


class Module:
    """A compilation unit: functions plus global arrays."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalArray] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def add_global(self, array: GlobalArray) -> GlobalArray:
        if array.name in self.globals:
            raise ValueError(f"duplicate global {array.name!r}")
        self.globals[array.name] = array
        return array

    def function(self, name: str) -> Function:
        return self.functions[name]

    def __str__(self) -> str:
        parts = []
        for g in self.globals.values():
            parts.append(f"global {g.name}[{g.size}]")
        parts.extend(str(f) for f in self.functions.values())
        return "\n\n".join(parts)


def count_real_instructions(func: Function) -> int:
    """Number of non-terminator instructions in *func* (used in reports)."""
    return sum(
        1 for insn in func.instructions()
        if insn.opcode not in (Opcode.BR, Opcode.JMP, Opcode.RET)
    )

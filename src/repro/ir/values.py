"""Operand values of the repro IR: virtual registers and integer constants.

All arithmetic in the IR is 32-bit two's complement; :func:`wrap32` and
:func:`to_signed` implement the canonical normalisation used everywhere
(frontend constant folding, the interpreter, and the AFU functional model),
so the three can never disagree about overflow behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

MASK32 = 0xFFFFFFFF
INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


def wrap32(value: int) -> int:
    """Wrap *value* to a signed 32-bit integer (two's complement)."""
    value &= MASK32
    if value > INT32_MAX:
        value -= 1 << 32
    return value


def to_unsigned(value: int) -> int:
    """Reinterpret a signed 32-bit value as unsigned (0 .. 2^32-1)."""
    return value & MASK32


def to_signed(value: int) -> int:
    """Reinterpret an unsigned 32-bit value as signed."""
    return wrap32(value)


@dataclass(frozen=True)
class Reg:
    """A virtual register operand, identified by name.

    Register names are unique within a function.  The frontend generates
    ``%tN`` temporaries and ``var.N`` versions of source-level variables.
    """

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """An integer constant operand (already wrapped to 32 bits)."""

    value: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", wrap32(self.value))

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[Reg, Const]


def is_reg(operand: Operand) -> bool:
    return isinstance(operand, Reg)


def is_const(operand: Operand) -> bool:
    return isinstance(operand, Const)

"""Opcode definitions for the repro intermediate representation.

The IR is a small RISC-like register machine: three-address arithmetic and
logic operations over 32-bit two's-complement integers, explicit ``LOAD`` /
``STORE`` instructions addressing named global arrays, a ``SELECT`` node
produced by if-conversion, and structured terminators (``BR``/``JMP``/``RET``).

Each opcode carries the static properties that the rest of the system needs:

* whether it may appear inside an AFU cut (:attr:`OpInfo.afu_legal`) — the
  paper forbids memory accesses and anything with architectural state;
* commutativity (used by CSE and by the DFG canonicaliser);
* arity of its register/constant operands.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Every operation of the repro IR."""

    # Arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"          # signed, truncating; traps on zero in the interpreter
    REM = "rem"          # signed remainder
    NEG = "neg"

    # Bitwise logic.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"

    # Shifts (shift amount taken modulo 32, as on most 32-bit cores).
    SHL = "shl"
    LSHR = "lshr"
    ASHR = "ashr"

    # Comparisons (result is 0 or 1).
    EQ = "eq"
    NE = "ne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"

    # Data movement / selection.
    COPY = "copy"
    SELECT = "select"    # select(cond, if_true, if_false); the paper's SEL

    # Memory (never AFU-legal).
    LOAD = "load"        # dest = array[index]
    STORE = "store"      # array[index] = value

    # Calls (never AFU-legal).
    CALL = "call"

    # A fused custom instruction produced by the ISE rewriter
    # (:mod:`repro.exec.rewrite`).  Never emitted by the frontend and
    # never itself eligible for further specialisation.
    ISE = "ise"

    # Terminators.
    BR = "br"            # br cond, then_label, else_label
    JMP = "jmp"
    RET = "ret"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Opcode.{self.name}"


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode."""

    arity: int
    has_dest: bool
    commutative: bool = False
    is_memory: bool = False
    is_terminator: bool = False
    has_side_effects: bool = False
    afu_legal: bool = True


_OPINFO = {
    Opcode.ADD: OpInfo(2, True, commutative=True),
    Opcode.SUB: OpInfo(2, True),
    Opcode.MUL: OpInfo(2, True, commutative=True),
    Opcode.DIV: OpInfo(2, True),
    Opcode.REM: OpInfo(2, True),
    Opcode.NEG: OpInfo(1, True),
    Opcode.AND: OpInfo(2, True, commutative=True),
    Opcode.OR: OpInfo(2, True, commutative=True),
    Opcode.XOR: OpInfo(2, True, commutative=True),
    Opcode.NOT: OpInfo(1, True),
    Opcode.SHL: OpInfo(2, True),
    Opcode.LSHR: OpInfo(2, True),
    Opcode.ASHR: OpInfo(2, True),
    Opcode.EQ: OpInfo(2, True, commutative=True),
    Opcode.NE: OpInfo(2, True, commutative=True),
    Opcode.SLT: OpInfo(2, True),
    Opcode.SLE: OpInfo(2, True),
    Opcode.SGT: OpInfo(2, True),
    Opcode.SGE: OpInfo(2, True),
    Opcode.COPY: OpInfo(1, True),
    Opcode.SELECT: OpInfo(3, True),
    Opcode.LOAD: OpInfo(1, True, is_memory=True, afu_legal=False),
    Opcode.STORE: OpInfo(2, False, is_memory=True, has_side_effects=True,
                         afu_legal=False),
    Opcode.CALL: OpInfo(0, True, has_side_effects=True, afu_legal=False),
    # ISE writes multiple registers through ISEInstruction.dests (so
    # has_dest is False at the base-class level) and must be opaque to
    # every optimisation pass, hence has_side_effects.
    Opcode.ISE: OpInfo(0, False, has_side_effects=True, afu_legal=False),
    Opcode.BR: OpInfo(1, False, is_terminator=True, afu_legal=False),
    Opcode.JMP: OpInfo(0, False, is_terminator=True, afu_legal=False),
    Opcode.RET: OpInfo(0, False, is_terminator=True, afu_legal=False),
}

#: Opcodes whose result depends only on operand values (safe for CSE and for
#: speculative execution during if-conversion).
PURE_OPS = frozenset(
    op for op, info in _OPINFO.items()
    if not info.is_memory and not info.has_side_effects
    and not info.is_terminator
)

#: Binary comparison opcodes.
COMPARISON_OPS = frozenset({
    Opcode.EQ, Opcode.NE, Opcode.SLT, Opcode.SLE, Opcode.SGT, Opcode.SGE,
})

#: Map from a comparison to its negation (used by branch simplification).
NEGATED_COMPARISON = {
    Opcode.EQ: Opcode.NE,
    Opcode.NE: Opcode.EQ,
    Opcode.SLT: Opcode.SGE,
    Opcode.SGE: Opcode.SLT,
    Opcode.SGT: Opcode.SLE,
    Opcode.SLE: Opcode.SGT,
}

#: Map from a comparison to the equivalent with swapped operands.
SWAPPED_COMPARISON = {
    Opcode.EQ: Opcode.EQ,
    Opcode.NE: Opcode.NE,
    Opcode.SLT: Opcode.SGT,
    Opcode.SGT: Opcode.SLT,
    Opcode.SLE: Opcode.SGE,
    Opcode.SGE: Opcode.SLE,
}


def opinfo(op: Opcode) -> OpInfo:
    """Return the static :class:`OpInfo` for *op*."""
    return _OPINFO[op]


def is_terminator(op: Opcode) -> bool:
    return _OPINFO[op].is_terminator


def is_memory(op: Opcode) -> bool:
    return _OPINFO[op].is_memory


def is_afu_legal(op: Opcode) -> bool:
    """True if an operation of this opcode may be included in an AFU cut."""
    return _OPINFO[op].afu_legal

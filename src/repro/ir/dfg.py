"""Per-basic-block dataflow graphs — the paper's ``G+(V u V+, E u E+)``.

A :class:`DataFlowGraph` holds the DAG ``G`` of the operations of one basic
block, plus the additional input/output information carried by ``V+``/``E+``:

* **input variables** — registers that are live into the block and read by
  its operations (the paper's input nodes ``V+``);
* **forced outputs** — nodes whose value is live out of the block (or used
  by the terminator) and therefore always contribute to ``OUT(S)``.

Nodes are numbered in *reverse topological order*: for every dataflow edge
``producer -> consumer`` the producer has the **larger** index.  This is the
ordering required by the paper's search algorithm (Section 6.1): deciding
nodes in increasing index order means all consumers of a node are decided
before the node itself, which makes the output-port count and the convexity
status of a growing cut monotone.

A node may be *forbidden* (memory access, call, or a supernode produced by
:meth:`DataFlowGraph.collapse`); forbidden nodes can never join a cut but
still participate in convexity and I/O accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .cfg import Liveness
from .function import BasicBlock, Function
from .instructions import Instruction
from .opcodes import Opcode
from .values import Reg


@dataclass
class DFGNode:
    """One vertex of the dataflow graph.

    ``insns`` normally holds a single IR instruction; a collapsed supernode
    (a previously selected cut, see :meth:`DataFlowGraph.collapse`) holds all
    of its member instructions and has ``opcode is None``.
    """

    index: int
    opcode: Optional[Opcode]
    insns: Tuple[Instruction, ...]
    label: str
    forbidden: bool
    forced_out: bool

    @property
    def is_super(self) -> bool:
        return self.opcode is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DFGNode {self.index}:{self.label}>"


class DFGMasks:
    """Bitset encoding of a :class:`DataFlowGraph`, shared by the search
    engine (see DESIGN.md §5).

    Node ``i`` owns bit ``1 << i``; external input variable ``j`` owns bit
    ``1 << (n + j)``.  All masks are plain Python ints, so the per-node
    constraint checks of the branch-and-bound search become O(1)
    word-parallel bitwise operations instead of per-edge loops.

    Attributes:
        succ: ``succ[i]`` — bits of the internal consumers of node ``i``
            (all strictly below bit ``i`` by reverse topological order).
        pred: ``pred[i]`` — bits of the internal producers of node ``i``.
        producer: ``producer[i]`` — unified producer bits of node ``i``:
            one bit per distinct internal value read (node index, or a
            synthetic id above ``n + |input_vars|`` for a multi-value
            supernode's later outputs) plus its external input variables
            shifted by ``n``.
        forced_out: bits of nodes whose value is live out of the block.
        forbidden: bits of nodes that can never join a cut.
        all_nodes: ``(1 << n) - 1``.
    """

    __slots__ = ("succ", "pred", "producer", "forced_out", "forbidden",
                 "all_nodes")

    def __init__(self, dfg: "DataFlowGraph") -> None:
        n = dfg.n
        self.succ = [_bits(row) for row in dfg.succs]
        self.pred = [_bits(row) for row in dfg.preds]
        # One bit per distinct read *value* (not per producer node): a
        # multi-value supernode contributes one bit per consumed output,
        # so popcount-based IN(S) equals register-file reads exactly.
        self.producer = [_bits(dfg.producers_of(i)) for i in range(n)]
        self.forced_out = _bits(
            i for i in range(n) if dfg.nodes[i].forced_out)
        self.forbidden = _bits(
            i for i in range(n) if dfg.nodes[i].forbidden)
        self.all_nodes = (1 << n) - 1


def _bits(indices: Iterable[int]) -> int:
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


class DataFlowGraph:
    """The dataflow graph of one basic block, ready for cut enumeration.

    Attributes:
        name: ``function/block`` identifier, for reports.
        nodes: nodes in index order (index 0 first).  Reverse topological:
            every edge goes from a higher index (producer) to a lower index
            (consumer).
        succs: ``succs[i]`` — indices of internal consumers of node ``i``
            (no duplicates, sorted).
        preds: ``preds[i]`` — indices of internal producers feeding ``i``.
        input_vars: names of external input variables (live-in registers
            read by the block), in first-use order.
        node_inputs: ``node_inputs[i]`` — indices into ``input_vars`` that
            node ``i`` reads directly.
        weight: execution frequency of the block (from profiling).
    """

    def __init__(
        self,
        name: str,
        nodes: List[DFGNode],
        succs: List[List[int]],
        preds: List[List[int]],
        input_vars: List[str],
        node_inputs: List[List[int]],
        weight: float = 1.0,
        operand_sources: Optional[List[Tuple]] = None,
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.succs = succs
        self.preds = preds
        self.input_vars = input_vars
        self.node_inputs = node_inputs
        self.weight = weight
        #: Per node, one source tag per instruction operand:
        #: ``('const', value)``, ``('var', input-var name)`` or
        #: ``('node', producer index)``.  Disambiguates reused (non-SSA)
        #: register names; required for AFU datapath construction.
        self.operand_sources: List[Tuple] = (
            operand_sources if operand_sources is not None
            else [() for _ in nodes])
        # Caches (a DFG is immutable once built; collapse returns a new
        # graph, so these never need invalidation).
        self._masks: Optional[DFGMasks] = None
        self._producers: Optional[List[List[int]]] = None
        self._value_reads: Optional[List[List[int]]] = None
        self._value_owner: Dict[int, int] = {}
        self._cost_cache: Dict[int, Tuple] = {}
        self._check_invariants()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def masks(self) -> DFGMasks:
        """Cached bitset encoding of the graph (built on first use)."""
        if self._masks is None:
            self._masks = DFGMasks(self)
        return self._masks

    @property
    def producers(self) -> List[List[int]]:
        """Cached ``[producers_of(i) for i in range(n)]``."""
        if self._producers is None:
            self._producers = [self.producers_of(i) for i in range(self.n)]
        return self._producers

    def cost_vectors(self, model) -> Tuple[List[float], List[float]]:
        """Per-node ``(sw, hw)`` cost vectors under *model*, cached.

        Forbidden nodes cost 0 software cycles (they can never be part of
        a cut's software mass) and infinite hardware delay.  The cache is
        keyed by model identity and holds a reference to the model so a
        recycled ``id()`` can never alias a different model.
        """
        entry = self._cost_cache.get(id(model))
        if entry is not None and entry[0] is model:
            return entry[1], entry[2]
        sw = [0.0 if node.forbidden else model.sw(node)
              for node in self.nodes]
        hw = [math.inf if node.forbidden else model.hw(node)
              for node in self.nodes]
        if len(self._cost_cache) >= 8:     # throwaway models: stay bounded
            self._cost_cache.clear()
        self._cost_cache[id(model)] = (model, sw, hw)
        return sw, hw

    def _check_invariants(self) -> None:
        n = self.n
        if not (len(self.succs) == len(self.preds)
                == len(self.node_inputs) == n):
            raise ValueError("inconsistent DFG adjacency sizes")
        for i, node in enumerate(self.nodes):
            if node.index != i:
                raise ValueError(f"node {node.label} has index {node.index}, "
                                 f"expected {i}")
            for s in self.succs[i]:
                if not s < i:
                    raise ValueError(
                        f"edge {i}->{s} violates reverse topological order")
            for p in self.preds[i]:
                if not p > i:
                    raise ValueError(
                        f"pred edge {p}->{i} violates reverse topological "
                        f"order")

    # ------------------------------------------------------------------
    # Whole-graph queries used by cut verification and baselines.
    # ------------------------------------------------------------------
    @property
    def value_reads(self) -> List[List[int]]:
        """Per node, the distinct *value* ids it reads from internal
        producers.

        Each value a cut reads from outside occupies one register-file
        read port, so ``IN(S)`` must count values, not producer nodes.
        For an ordinary node (one instruction, one result) the value id
        is simply the producer's index; a collapsed supernode exports one
        value per distinct member result still consumed outside, and
        every value beyond its first gets a synthetic id above
        ``n + len(input_vars)`` so that two different supernode outputs
        are never mistaken for a single read.  Derived from
        ``operand_sources`` (which tag supernode values); nodes without
        source info fall back to one value per pred edge — exact for
        graphs that never collapsed.
        """
        if self._value_reads is None:
            self._derive_values()
        return self._value_reads

    def _derive_values(self) -> None:
        extra_base = self.n + len(self.input_vars)
        extra_ids: Dict[Tuple[int, int], int] = {}
        owner: Dict[int, int] = {}
        reads: List[List[int]] = []
        for i in range(self.n):
            ids = set()
            covered = set()
            for src in self.operand_sources[i]:
                if not src or src[0] != "node":
                    continue
                p = src[1]
                tag = src[2] if len(src) > 2 else 0
                if tag == 0:
                    vid = p
                else:
                    key = (p, tag)
                    vid = extra_ids.get(key)
                    if vid is None:
                        vid = extra_base + len(extra_ids)
                        extra_ids[key] = vid
                        owner[vid] = p
                ids.add(vid)
                covered.add(p)
            # Pred edges without a source entry contribute one value each.
            for p in self.preds[i]:
                if p not in covered:
                    ids.add(p)
            reads.append(sorted(ids))
        self._value_reads = reads
        self._value_owner = owner

    def value_producer(self, vid: int) -> int:
        """The node index producing value *vid* (identity below ``n``)."""
        if vid < self.n:
            return vid
        self.value_reads    # ensure the owner map is derived
        return self._value_owner[vid]

    def producers_of(self, i: int) -> List[int]:
        """Unified producer ids of node *i*: one id per distinct internal
        *value* read (see :attr:`value_reads`); external input variable
        ``j`` gets id ``n + j``."""
        ids = list(self.value_reads[i])
        ids.extend(self.n + j for j in self.node_inputs[i])
        return ids

    def descendants(self, i: int) -> Set[int]:
        """All nodes reachable from *i* via dataflow edges (consumers,
        transitively)."""
        seen: Set[int] = set()
        stack = list(self.succs[i])
        while stack:
            x = stack.pop()
            if x in seen:
                continue
            seen.add(x)
            stack.extend(self.succs[x])
        return seen

    def ancestors(self, i: int) -> Set[int]:
        """All nodes that can reach *i* (producers, transitively)."""
        seen: Set[int] = set()
        stack = list(self.preds[i])
        while stack:
            x = stack.pop()
            if x in seen:
                continue
            seen.add(x)
            stack.extend(self.preds[x])
        return seen

    def cut_inputs(self, cut: Iterable[int]) -> Set[object]:
        """The distinct *values* feeding the cut from outside: ``IN(S)``
        is the size of this set.  Elements are value ids (see
        :attr:`value_reads` — a multi-value supernode counts once per
        consumed output) and ``('var', name)`` tuples."""
        members = set(cut)
        result: Set[object] = set()
        for i in members:
            for vid in self.value_reads[i]:
                if self.value_producer(vid) not in members:
                    result.add(vid)
            for j in self.node_inputs[i]:
                result.add(("var", self.input_vars[j]))
        return result

    def cut_outputs(self, cut: Iterable[int]) -> Set[int]:
        """Nodes of the cut whose value leaves it: ``OUT(S)`` is the size
        of this set."""
        members = set(cut)
        result: Set[int] = set()
        for i in members:
            if self.nodes[i].forced_out:
                result.add(i)
                continue
            if any(s not in members for s in self.succs[i]):
                result.add(i)
        return result

    def is_convex(self, cut: Iterable[int]) -> bool:
        """Naive convexity check (used for verification; the search uses an
        incremental formulation)."""
        members = set(cut)
        for i in members:
            # Walk paths leaving i through excluded nodes; if such a path
            # re-enters the cut, the cut is not convex.
            stack = [s for s in self.succs[i] if s not in members]
            seen: Set[int] = set()
            while stack:
                x = stack.pop()
                if x in seen:
                    continue
                seen.add(x)
                for s in self.succs[x]:
                    if s in members:
                        return False
                    stack.append(s)
        return True

    # ------------------------------------------------------------------
    # Collapsing (used by iterative selection, Section 6.3 of the paper).
    # ------------------------------------------------------------------
    def collapse(self, cut: Iterable[int], label: str) -> "DataFlowGraph":
        """Return a new graph where the (convex) *cut* is merged into one
        forbidden supernode, so later identification rounds can neither
        reuse its operations nor create cuts that are non-convex through it.
        """
        members = frozenset(cut)
        if not members:
            raise ValueError("cannot collapse an empty cut")
        if not self.is_convex(members):
            raise ValueError("cannot collapse a non-convex cut")

        # Old index -> new group id.  The supernode takes one slot.
        survivors = [i for i in range(self.n) if i not in members]
        group_of: Dict[int, int] = {}
        for i in survivors:
            group_of[i] = i
        for i in members:
            group_of[i] = -1  # sentinel for the supernode

        # Distinct member-produced values still consumed by survivors,
        # in deterministic (producer, tag) order.  Each keeps its own
        # identity through the collapse: the first maps to the plain
        # supernode token, every later one to a tagged token, so input
        # counting and AFU port construction see one value per distinct
        # supernode output instead of aliasing them all into one.
        exported: Set[Tuple] = set()
        for i in survivors:
            for src in self.operand_sources[i]:
                if src and src[0] == "node" and src[1] in members:
                    exported.add(src)
        export_tag = {
            tok: tag
            for tag, tok in enumerate(sorted(
                exported,
                key=lambda s: (s[1], s[2] if len(s) > 2 else 0)))
        }

        def remap_source(src: Tuple) -> Tuple:
            if src and src[0] == "node":
                old = src[1]
                if old in members:
                    tag = export_tag[src]
                    if tag == 0:
                        return ("node", new_index["super"])
                    return ("node", new_index["super"], tag)
                if len(src) > 2:    # surviving supernode: keep its tag
                    return ("node", new_index[old], src[2])
                return ("node", new_index[old])
            return src

        # Gather union edges of the supernode.
        super_succs: Set[int] = set()
        super_preds: Set[int] = set()
        super_inputs: Set[int] = set()
        member_insns: List[Instruction] = []
        forced = False
        for i in sorted(members, reverse=True):  # producer-to-consumer order
            member_insns.extend(self.nodes[i].insns)
            forced = forced or self.nodes[i].forced_out
            super_succs.update(s for s in self.succs[i] if s not in members)
            super_preds.update(p for p in self.preds[i] if p not in members)
            super_inputs.update(self.node_inputs[i])

        # Renumber from scratch: merging can place the supernode anywhere
        # relative to interleaved excluded nodes, so compute a fresh
        # reverse topological order (producers-first Kahn, reversed; ties
        # broken by old index, with the supernode ordered at its lowest
        # member's position).
        keys: List[object] = list(survivors) + ["super"]
        sort_pos = {key: (key if key != "super" else min(members))
                    for key in keys}
        group_succs: Dict[object, Set[object]] = {key: set() for key in keys}
        for i in survivors:
            for s in self.succs[i]:
                group_succs[i].add("super" if s in members else s)
        group_succs["super"] = set(super_succs)
        indegree: Dict[object, int] = {key: 0 for key in keys}
        for key in keys:
            for s in group_succs[key]:
                indegree[s] += 1
        import heapq

        heap = [(sort_pos[key], key) for key in keys if indegree[key] == 0]
        heapq.heapify(heap)
        topo: List[object] = []
        while heap:
            _, key = heapq.heappop(heap)
            topo.append(key)
            for s in group_succs[key]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    heapq.heappush(heap, (sort_pos[s], s))
        if len(topo) != len(keys):
            raise ValueError("collapse produced a cyclic graph "
                             "(cut was not convex?)")
        order = list(reversed(topo))

        new_index: Dict[object, int] = {key: k for k, key in enumerate(order)}
        nodes: List[DFGNode] = []
        succs: List[List[int]] = []
        preds: List[List[int]] = []
        node_inputs: List[List[int]] = []
        sources: List[Tuple] = []
        for key in order:
            if key == "super":
                nodes.append(DFGNode(
                    index=new_index[key],
                    opcode=None,
                    insns=tuple(member_insns),
                    label=label,
                    forbidden=True,
                    forced_out=forced,
                ))
                succs.append(sorted(new_index[s] for s in super_succs))
                preds.append(sorted(new_index[p] for p in super_preds))
                node_inputs.append(sorted(super_inputs))
                sources.append(())
            else:
                old = self.nodes[key]
                nodes.append(DFGNode(
                    index=new_index[key],
                    opcode=old.opcode,
                    insns=old.insns,
                    label=old.label,
                    forbidden=old.forbidden,
                    forced_out=old.forced_out,
                ))
                row_s = {new_index[s] if s not in members else
                         new_index["super"] for s in self.succs[key]}
                row_p = {new_index[p] if p not in members else
                         new_index["super"] for p in self.preds[key]}
                succs.append(sorted(row_s))
                preds.append(sorted(row_p))
                node_inputs.append(list(self.node_inputs[key]))
                sources.append(tuple(
                    remap_source(src)
                    for src in self.operand_sources[key]))

        return DataFlowGraph(
            name=self.name,
            nodes=nodes,
            succs=succs,
            preds=preds,
            input_vars=list(self.input_vars),
            node_inputs=node_inputs,
            weight=self.weight,
            operand_sources=sources,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DataFlowGraph {self.name} ({self.n} nodes)>"


# ----------------------------------------------------------------------
# Construction from IR.
# ----------------------------------------------------------------------
def build_dfg(
    block: BasicBlock,
    live_out: Set[str],
    name: Optional[str] = None,
    weight: float = 1.0,
) -> DataFlowGraph:
    """Build the ``G+`` graph of *block*.

    Args:
        block: the basic block.
        live_out: registers live at block exit (from :class:`Liveness`).
        name: identifier for reports; defaults to the block label.
        weight: execution frequency of the block.
    """
    body = block.body
    term = block.terminator
    term_uses: Set[str] = set(term.uses()) if term is not None else set()

    n = len(body)
    # Map register name -> producing node id, following sequential defs.
    last_def: Dict[str, int] = {}
    raw_preds: List[Set[int]] = [set() for _ in range(n)]
    raw_inputs: List[Set[int]] = [set() for _ in range(n)]
    raw_sources: List[List[Tuple]] = [[] for _ in range(n)]
    input_vars: List[str] = []
    input_id: Dict[str, int] = {}

    for i, insn in enumerate(body):
        for op in insn.operands:
            if not isinstance(op, Reg):
                raw_sources[i].append(("const", op.value))
                continue
            if op.name in last_def:
                raw_preds[i].add(last_def[op.name])
                raw_sources[i].append(("node", last_def[op.name]))
            else:
                if op.name not in input_id:
                    input_id[op.name] = len(input_vars)
                    input_vars.append(op.name)
                raw_inputs[i].add(input_id[op.name])
                raw_sources[i].append(("var", op.name))
        if insn.dest is not None:
            last_def[insn.dest] = i

    # forced_out: the node holds the final in-block definition of a register
    # that is live out of the block or read by the terminator.
    forced_out = [False] * n
    for reg, i in last_def.items():
        if reg in live_out or reg in term_uses:
            forced_out[i] = True

    # Successor sets (producer -> consumer).
    raw_succs: List[Set[int]] = [set() for _ in range(n)]
    for i in range(n):
        for p in raw_preds[i]:
            raw_succs[p].add(i)

    # Reverse topological numbering: topological order producers-first
    # (Kahn, smallest original id first for determinism), then reversed.
    indegree = [len(raw_preds[i]) for i in range(n)]
    import heapq

    heap = [i for i in range(n) if indegree[i] == 0]
    heapq.heapify(heap)
    topo: List[int] = []
    while heap:
        i = heapq.heappop(heap)
        topo.append(i)
        for s in raw_succs[i]:
            indegree[s] -= 1
            if indegree[s] == 0:
                heapq.heappush(heap, s)
    if len(topo) != n:
        raise ValueError(f"cycle in dataflow graph of block {block.label}")
    order = list(reversed(topo))            # consumers first
    new_of_old = {old: new for new, old in enumerate(order)}

    nodes: List[DFGNode] = []
    succs: List[List[int]] = []
    preds: List[List[int]] = []
    node_inputs: List[List[int]] = []
    sources: List[Tuple] = []
    for new, old in enumerate(order):
        insn = body[old]
        nodes.append(DFGNode(
            index=new,
            opcode=insn.opcode,
            insns=(insn,),
            label=f"{insn.opcode.value}#{old}",
            forbidden=not insn.afu_legal,
            forced_out=forced_out[old],
        ))
        succs.append(sorted(new_of_old[s] for s in raw_succs[old]))
        preds.append(sorted(new_of_old[p] for p in raw_preds[old]))
        node_inputs.append(sorted(raw_inputs[old]))
        sources.append(tuple(
            ("node", new_of_old[src[1]]) if src[0] == "node" else src
            for src in raw_sources[old]))

    return DataFlowGraph(
        name=name or block.label,
        nodes=nodes,
        succs=succs,
        preds=preds,
        input_vars=input_vars,
        node_inputs=node_inputs,
        weight=weight,
        operand_sources=sources,
    )


def function_dfgs(
    func: Function,
    weights: Optional[Dict[str, float]] = None,
    min_nodes: int = 1,
) -> List[DataFlowGraph]:
    """Build one DFG per basic block of *func*.

    Args:
        func: the function.
        weights: optional block label -> execution count (from profiling);
            blocks absent from the map get weight 1.0.
        min_nodes: skip blocks whose DFG has fewer nodes than this.
    """
    liveness = Liveness(func)
    graphs: List[DataFlowGraph] = []
    for block in func.blocks:
        weight = 1.0 if weights is None else weights.get(block.label, 0.0)
        dfg = build_dfg(
            block,
            liveness.live_out_of(block.label),
            name=f"{func.name}/{block.label}",
            weight=weight,
        )
        if dfg.n >= min_nodes:
            graphs.append(dfg)
    return graphs

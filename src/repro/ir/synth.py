"""Synthetic dataflow graphs: hand-built fixtures and random DAGs.

Used by tests, examples and the Fig. 8 benchmark harness.  The builder
accepts an arbitrary DAG description and renumbers it into the reverse
topological order that :class:`~repro.ir.dfg.DataFlowGraph` requires, so
fixtures can be written in whatever order is most readable.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dfg import DataFlowGraph, DFGNode
from .instructions import Instruction
from .opcodes import Opcode, opinfo
from .values import Const, Reg


def make_dfg(
    ops: Sequence[Opcode],
    edges: Iterable[Tuple[int, int]],
    live_out: Iterable[int] = (),
    extra_inputs: Optional[Dict[int, int]] = None,
    name: str = "synthetic",
    weight: float = 1.0,
    keep_order: bool = False,
) -> DataFlowGraph:
    """Build a :class:`DataFlowGraph` from an explicit DAG description.

    Args:
        ops: opcode of each node, indexed by *user* node id (any order).
        edges: ``(producer, consumer)`` pairs over user node ids.
        live_out: user node ids whose value escapes the block.
        extra_inputs: user node id -> number of external input variables
            the node reads *in addition* to its internal producers.  When
            omitted, each node is padded with input variables up to its
            opcode arity (so a binary add with one internal producer reads
            one input variable).
        name: graph name for reports.
        weight: execution frequency.
        keep_order: use the user node ids directly as DFG indices (they
            must already form a reverse topological order, i.e. every edge
            must satisfy ``producer > consumer``).  Needed by fixtures that
            reproduce the paper's exact search traces.

    Returns:
        A graph whose node ``i`` corresponds to user id via reverse
        topological renumbering; the mapping is stable (ties broken by
        user id) and exposed in each node's label as ``op#<user-id>``.
    """
    n = len(ops)
    preds_user: List[Set[int]] = [set() for _ in range(n)]
    succs_user: List[Set[int]] = [set() for _ in range(n)]
    for producer, consumer in edges:
        if not (0 <= producer < n and 0 <= consumer < n):
            raise ValueError(f"edge ({producer},{consumer}) out of range")
        if producer == consumer:
            raise ValueError("self-loop in DAG description")
        preds_user[consumer].add(producer)
        succs_user[producer].add(consumer)

    live = set(live_out)

    if keep_order:
        for producer, consumer in edges:
            if producer <= consumer:
                raise ValueError(
                    f"keep_order requires producer > consumer; edge "
                    f"({producer},{consumer}) violates it")
        order = list(range(n))
    else:
        # Reverse topological numbering: Kahn producers-first, reversed.
        indegree = [len(preds_user[i]) for i in range(n)]
        heap = [i for i in range(n) if indegree[i] == 0]
        heapq.heapify(heap)
        topo: List[int] = []
        while heap:
            i = heapq.heappop(heap)
            topo.append(i)
            for s in sorted(succs_user[i]):
                indegree[s] -= 1
                if indegree[s] == 0:
                    heapq.heappush(heap, s)
        if len(topo) != n:
            raise ValueError("edge list contains a cycle")
        order = list(reversed(topo))
    new_of_user = {user: new for new, user in enumerate(order)}

    input_vars: List[str] = []
    nodes: List[DFGNode] = []
    succs: List[List[int]] = []
    preds: List[List[int]] = []
    node_inputs: List[List[int]] = []
    sources: List[Tuple] = []

    for new, user in enumerate(order):
        op = ops[user]
        info = opinfo(op)
        internal = len(preds_user[user])
        if extra_inputs is not None:
            pad = extra_inputs.get(user, 0)
        else:
            pad = max(0, info.arity - internal)
        my_inputs: List[int] = []
        for k in range(pad):
            var = f"in{user}_{k}"
            my_inputs.append(len(input_vars))
            input_vars.append(var)

        operands = tuple(Reg(f"v{p}") for p in sorted(preds_user[user]))
        my_sources: List[Tuple] = [
            ("node", new_of_user[p]) for p in sorted(preds_user[user])]
        operands += tuple(Reg(f"in{user}_{k}") for k in range(pad))
        my_sources.extend(("var", f"in{user}_{k}") for k in range(pad))
        # Pad with constants if the arity is still short (rare fixtures).
        while len(operands) < info.arity:
            operands += (Const(0),)
            my_sources.append(("const", 0))
        array = f"mem{user}" if op in (Opcode.LOAD, Opcode.STORE) else None
        callee = f"fn{user}" if op is Opcode.CALL else None
        dest = f"v{user}" if opinfo(op).has_dest else None
        insn = Instruction(op, dest=dest, operands=operands,
                           array=array, callee=callee)

        nodes.append(DFGNode(
            index=new,
            opcode=op,
            insns=(insn,),
            label=f"{op.value}#{user}",
            forbidden=not info.afu_legal,
            forced_out=user in live,
        ))
        succs.append(sorted(new_of_user[s] for s in succs_user[user]))
        preds.append(sorted(new_of_user[p] for p in preds_user[user]))
        node_inputs.append(my_inputs)
        sources.append(tuple(my_sources))

    return DataFlowGraph(
        name=name,
        nodes=nodes,
        succs=succs,
        preds=preds,
        input_vars=input_vars,
        node_inputs=node_inputs,
        weight=weight,
        operand_sources=sources,
    )


def paper_figure4_dfg() -> DataFlowGraph:
    """The 4-node example of the paper's Fig. 4.

    Reconstruction (validated against the Fig. 7 trace): user ids equal the
    paper's topological numbers; edges ``3 -> 2 -> 0`` and ``1 -> 0``; the
    values of nodes 0, 1 and 3 are also used outside the candidate cut
    (live out), node 2 only feeds node 0.  With ``Nout = 1`` the Fig. 6
    algorithm then examines exactly 11 of the 16 possible cuts, finds 5
    feasible and 6 infeasible, and prunes the remaining 4 — the numbers
    reported in the paper.
    """
    ops = [Opcode.ADD, Opcode.ADD, Opcode.LSHR, Opcode.MUL]
    edges = [(3, 2), (2, 0), (1, 0)]
    return make_dfg(ops, edges, live_out=[0, 1, 3], name="paper-fig4",
                    keep_order=True)


def random_dag_dfg(
    num_nodes: int,
    rng: random.Random,
    edge_prob: float = 0.3,
    live_out_prob: float = 0.3,
    forbidden_prob: float = 0.0,
    name: str = "random",
    weight: float = 1.0,
) -> DataFlowGraph:
    """A random DAG for property tests and scaling studies.

    Edges only go from lower to higher user id (then renumbered), giving a
    uniform-ish DAG.  ``forbidden_prob`` sprinkles LOAD nodes to exercise
    forbidden-node handling.
    """
    legal_ops = [
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
        Opcode.XOR, Opcode.SHL, Opcode.ASHR, Opcode.SLT, Opcode.SELECT,
        Opcode.NOT,
    ]
    ops: List[Opcode] = []
    for _ in range(num_nodes):
        if rng.random() < forbidden_prob:
            ops.append(Opcode.LOAD)
        else:
            ops.append(rng.choice(legal_ops))
    edges: List[Tuple[int, int]] = []
    for consumer in range(1, num_nodes):
        arity = opinfo(ops[consumer]).arity
        max_preds = min(consumer, arity)
        for producer in rng.sample(range(consumer), consumer):
            if len([e for e in edges if e[1] == consumer]) >= max_preds:
                break
            if rng.random() < edge_prob:
                edges.append((producer, consumer))
    live = [i for i in range(num_nodes) if rng.random() < live_out_prob]
    sinks = {i for i in range(num_nodes)
             if not any(e[0] == i for e in edges)}
    live = sorted(set(live) | sinks)   # sinks must matter to someone
    return make_dfg(ops, edges, live_out=live, name=name, weight=weight)

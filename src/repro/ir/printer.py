"""Textual IR serialisation: printing and re-parsing modules.

The format is exactly what ``str(module)`` produces::

    global table[16] = {1, 2, 3}

    func f(a, b):
    entry:
      %t0 = add %a, %b
      store table[%t0] = 5
      br %t0, then, done
    ...

Round-tripping (``parse_module(print_module(m))``) is guaranteed by the
test suite; it is used for IR fixtures and for debugging dumps that can be
fed back into the tools.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .function import Function, GlobalArray, Module
from .instructions import Instruction
from .opcodes import Opcode, opinfo
from .values import Const, Operand, Reg


def print_module(module: Module) -> str:
    """Serialise *module*, including global initialisers."""
    parts: List[str] = []
    for g in module.globals.values():
        nonzero = any(v != 0 for v in g.init)
        if nonzero:
            init = ", ".join(str(v) for v in g.init)
            parts.append(f"global {g.name}[{g.size}] = {{{init}}}")
        else:
            parts.append(f"global {g.name}[{g.size}]")
    parts.extend(str(func) for func in module.functions.values())
    return "\n\n".join(parts) + "\n"


class IRParseError(ValueError):
    """Malformed textual IR."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line!r}")


_GLOBAL_RE = re.compile(
    r"^global\s+(\w+)\[(\d+)\](?:\s*=\s*\{([^}]*)\})?$")
_FUNC_RE = re.compile(r"^func\s+(\w+)\(([^)]*)\):$")
_LABEL_RE = re.compile(r"^(\w+):$")
_ASSIGN_RE = re.compile(r"^%([\w.]+)\s*=\s*(.*)$")
_LOAD_RE = re.compile(r"^load\s+(\w+)\[(.+)\]$")
_STORE_RE = re.compile(r"^store\s+(\w+)\[(.+)\]\s*=\s*(.+)$")
_CALL_RE = re.compile(r"^call\s+(\w+)\(([^)]*)\)$")

_OPCODE_BY_NAME = {op.value: op for op in Opcode}


def _parse_operand(text: str, line_no: int, line: str) -> Operand:
    text = text.strip()
    if text.startswith("%"):
        return Reg(text[1:])
    try:
        return Const(int(text, 0))
    except ValueError:
        raise IRParseError(f"bad operand {text!r}", line_no, line)


def _split_operands(text: str, line_no: int, line: str) -> List[Operand]:
    text = text.strip()
    if not text:
        return []
    return [_parse_operand(part, line_no, line)
            for part in text.split(",")]


def _parse_instruction(text: str, line_no: int,
                       line: str) -> Instruction:
    text = text.strip()

    # Terminators and stores (no destination).
    if text.startswith("store "):
        match = _STORE_RE.match(text)
        if not match:
            raise IRParseError("malformed store", line_no, line)
        array, index, value = match.groups()
        return Instruction(
            Opcode.STORE, None,
            (_parse_operand(index, line_no, line),
             _parse_operand(value, line_no, line)),
            array=array)
    if text.startswith("br "):
        rest = text[3:].split(",")
        if len(rest) != 3:
            raise IRParseError("malformed br", line_no, line)
        cond = _parse_operand(rest[0], line_no, line)
        return Instruction(Opcode.BR, None, (cond,),
                           targets=(rest[1].strip(), rest[2].strip()))
    if text.startswith("jmp "):
        return Instruction(Opcode.JMP, targets=(text[4:].strip(),))
    if text == "ret":
        return Instruction(Opcode.RET)
    if text.startswith("ret "):
        value = _parse_operand(text[4:], line_no, line)
        return Instruction(Opcode.RET, operands=(value,))
    if text.startswith("call "):
        match = _CALL_RE.match(text)
        if not match:
            raise IRParseError("malformed call", line_no, line)
        callee, args = match.groups()
        return Instruction(Opcode.CALL, None,
                           _split_operands(args, line_no, line),
                           callee=callee)

    # Destination forms.
    match = _ASSIGN_RE.match(text)
    if not match:
        raise IRParseError("unrecognised instruction", line_no, line)
    dest, rhs = match.groups()
    rhs = rhs.strip()

    load = _LOAD_RE.match(rhs)
    if load:
        array, index = load.groups()
        return Instruction(Opcode.LOAD, dest,
                           (_parse_operand(index, line_no, line),),
                           array=array)
    call = _CALL_RE.match(rhs)
    if call:
        callee, args = call.groups()
        return Instruction(Opcode.CALL, dest,
                           _split_operands(args, line_no, line),
                           callee=callee)

    head, _, tail = rhs.partition(" ")
    opcode = _OPCODE_BY_NAME.get(head)
    if opcode is None:
        raise IRParseError(f"unknown opcode {head!r}", line_no, line)
    operands = _split_operands(tail, line_no, line)
    if len(operands) != opinfo(opcode).arity:
        raise IRParseError(
            f"{head} expects {opinfo(opcode).arity} operand(s)",
            line_no, line)
    return Instruction(opcode, dest, operands)


def parse_module(text: str, name: str = "module") -> Module:
    """Parse the output of :func:`print_module` back into a module."""
    module = Module(name)
    func: Optional[Function] = None
    block = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue

        g = _GLOBAL_RE.match(line)
        if g:
            array_name, size, init = g.groups()
            values = None
            if init is not None and init.strip():
                values = [int(v.strip(), 0)
                          for v in init.split(",") if v.strip()]
            module.add_global(GlobalArray(array_name, int(size), values))
            continue

        f = _FUNC_RE.match(line)
        if f:
            func_name, params = f.groups()
            param_names = [p.strip() for p in params.split(",")
                           if p.strip()]
            func = Function(func_name, param_names)
            module.add_function(func)
            block = None
            continue

        label = _LABEL_RE.match(line)
        if label:
            if func is None:
                raise IRParseError("label outside a function",
                                   line_no, raw)
            block = func.add_block(label.group(1))
            continue

        if block is None:
            raise IRParseError("instruction outside a block",
                               line_no, raw)
        block.append(_parse_instruction(line, line_no, raw))

    return module


def roundtrip(module: Module) -> Module:
    """Print-and-reparse (used by tests to prove the format is lossless
    for everything the algorithms care about)."""
    return parse_module(print_module(module), name=module.name)

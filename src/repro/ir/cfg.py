"""Control-flow graph utilities: successors/predecessors, orderings,
reachability and backward liveness analysis.

Liveness is the load-bearing analysis here: the DFG builder uses *live-out*
sets to decide which cut nodes produce architecturally visible values, which
directly determines ``OUT(S)`` in the paper's Problem 1.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .function import BasicBlock, Function


def successors(func: Function) -> Dict[str, List[str]]:
    """Map label -> successor labels."""
    return {block.label: block.successors() for block in func.blocks}


def predecessors(func: Function) -> Dict[str, List[str]]:
    """Map label -> predecessor labels (in block order, duplicates kept
    only once)."""
    preds: Dict[str, List[str]] = {block.label: [] for block in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            if block.label not in preds[succ]:
                preds[succ].append(block.label)
    return preds


def reachable_blocks(func: Function) -> Set[str]:
    """Labels reachable from the entry block."""
    if not func.blocks:
        return set()
    seen: Set[str] = set()
    stack = [func.entry.label]
    succs = successors(func)
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(succs[label])
    return seen


def reverse_postorder(func: Function) -> List[str]:
    """Blocks in reverse postorder from the entry (good for forward
    dataflow and for deterministic iteration)."""
    succs = successors(func)
    seen: Set[str] = set()
    order: List[str] = []

    def visit(label: str) -> None:
        stack: List[Tuple[str, int]] = [(label, 0)]
        while stack:
            node, idx = stack.pop()
            if idx == 0:
                if node in seen:
                    continue
                seen.add(node)
            children = succs[node]
            if idx < len(children):
                stack.append((node, idx + 1))
                child = children[idx]
                if child not in seen:
                    stack.append((child, 0))
            else:
                order.append(node)

    if func.blocks:
        visit(func.entry.label)
    order.reverse()
    return order


def block_use_def(block: BasicBlock) -> Tuple[Set[str], Set[str]]:
    """Return (upward-exposed uses, defs) of *block*.

    A register is an upward-exposed use if it is read before any definition
    inside the block.
    """
    uses: Set[str] = set()
    defs: Set[str] = set()
    for insn in block.instructions:
        for name in insn.uses():
            if name not in defs:
                uses.add(name)
        for name in insn.defs():
            defs.add(name)
    return uses, defs


class Liveness:
    """Backward may-liveness over a function's CFG.

    Attributes:
        live_in: label -> set of register names live at block entry.
        live_out: label -> set of register names live at block exit.
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        self.live_in: Dict[str, Set[str]] = {}
        self.live_out: Dict[str, Set[str]] = {}
        self._compute()

    def _compute(self) -> None:
        func = self.func
        succs = successors(func)
        use: Dict[str, Set[str]] = {}
        defs: Dict[str, Set[str]] = {}
        for block in func.blocks:
            u, d = block_use_def(block)
            use[block.label] = u
            defs[block.label] = d
            self.live_in[block.label] = set()
            self.live_out[block.label] = set()

        # Iterate to a fixed point; postorder-ish sweep converges fast for
        # the small CFGs we handle.
        order = list(reversed(reverse_postorder(func)))
        # Include unreachable blocks so callers always find their labels.
        known = set(order)
        order.extend(b.label for b in func.blocks if b.label not in known)

        changed = True
        while changed:
            changed = False
            for label in order:
                out: Set[str] = set()
                for succ in succs[label]:
                    out |= self.live_in[succ]
                new_in = use[label] | (out - defs[label])
                if out != self.live_out[label]:
                    self.live_out[label] = out
                    changed = True
                if new_in != self.live_in[label]:
                    self.live_in[label] = new_in
                    changed = True

    def live_out_of(self, label: str) -> Set[str]:
        return self.live_out[label]

    def live_in_of(self, label: str) -> Set[str]:
        return self.live_in[label]


def verify_function(func: Function) -> List[str]:
    """Check structural invariants of *func*; return a list of problems
    (empty when the function is well-formed).

    Invariants:
    * every block ends in exactly one terminator, which is the last
      instruction;
    * every branch target exists;
    * the entry block exists;
    * no instruction other than the last is a terminator.
    """
    problems: List[str] = []
    if not func.blocks:
        problems.append(f"{func.name}: no blocks")
        return problems
    labels = {b.label for b in func.blocks}
    for block in func.blocks:
        if not block.is_terminated:
            problems.append(f"{func.name}/{block.label}: missing terminator")
        for i, insn in enumerate(block.instructions):
            if insn.is_terminator and i != len(block.instructions) - 1:
                problems.append(
                    f"{func.name}/{block.label}: terminator {insn} is not "
                    f"last")
        for target in block.successors():
            if target not in labels:
                problems.append(
                    f"{func.name}/{block.label}: unknown target {target!r}")
    return problems

"""Instruction objects of the repro IR.

An :class:`Instruction` is a mutable record — passes rewrite operands and
destinations in place.  Structural helpers (:meth:`Instruction.uses`,
:meth:`Instruction.defs`) expose the register-level dataflow that CFG
liveness and DFG construction are built on.

Terminators are ordinary instructions with ``Opcode.BR``/``JMP``/``RET`` and
carry their successor labels in :attr:`Instruction.targets`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .opcodes import Opcode, opinfo
from .values import Const, Operand, Reg


class Instruction:
    """A single IR instruction.

    Attributes:
        opcode: the operation.
        dest: destination register name, or ``None`` (stores, terminators).
        operands: register/constant operands.  For ``LOAD`` the single
            operand is the index; for ``STORE`` operands are
            ``(index, value)``; for ``BR`` the single operand is the
            condition; for ``RET`` zero or one operand; for ``CALL`` the
            actual arguments.
        array: global array symbol for ``LOAD``/``STORE``.
        callee: function name for ``CALL``.
        targets: successor labels for terminators
            (``BR``: (then, else); ``JMP``: (label,); ``RET``: ()).
    """

    __slots__ = ("opcode", "dest", "operands", "array", "callee", "targets")

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[str] = None,
        operands: Sequence[Operand] = (),
        array: Optional[str] = None,
        callee: Optional[str] = None,
        targets: Sequence[str] = (),
    ) -> None:
        self.opcode = opcode
        self.dest = dest
        self.operands: Tuple[Operand, ...] = tuple(operands)
        self.array = array
        self.callee = callee
        self.targets: Tuple[str, ...] = tuple(targets)
        self._validate()

    def _validate(self) -> None:
        info = opinfo(self.opcode)
        if info.has_dest and self.opcode is not Opcode.CALL:
            if self.dest is None:
                raise ValueError(f"{self.opcode} requires a destination")
        if self.opcode in (Opcode.LOAD, Opcode.STORE) and self.array is None:
            raise ValueError(f"{self.opcode} requires an array symbol")
        if self.opcode is Opcode.CALL and self.callee is None:
            raise ValueError("CALL requires a callee")
        if self.opcode is Opcode.BR and len(self.targets) != 2:
            raise ValueError("BR requires exactly two targets")
        if self.opcode is Opcode.JMP and len(self.targets) != 1:
            raise ValueError("JMP requires exactly one target")

    # ------------------------------------------------------------------
    # Dataflow structure.
    # ------------------------------------------------------------------
    def uses(self) -> List[str]:
        """Names of registers read by this instruction (with duplicates)."""
        return [op.name for op in self.operands if isinstance(op, Reg)]

    def defs(self) -> List[str]:
        """Names of registers written by this instruction (0 or 1)."""
        return [self.dest] if self.dest is not None else []

    def replace_uses(self, mapping: dict) -> None:
        """Rewrite register operands through ``mapping`` (name -> Operand)."""
        new_ops = []
        for op in self.operands:
            if isinstance(op, Reg) and op.name in mapping:
                new_ops.append(mapping[op.name])
            else:
                new_ops.append(op)
        self.operands = tuple(new_ops)

    # ------------------------------------------------------------------
    # Classification helpers.
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return opinfo(self.opcode).is_terminator

    @property
    def is_memory(self) -> bool:
        return opinfo(self.opcode).is_memory

    @property
    def has_side_effects(self) -> bool:
        return opinfo(self.opcode).has_side_effects

    @property
    def afu_legal(self) -> bool:
        return opinfo(self.opcode).afu_legal

    # ------------------------------------------------------------------
    # Display.
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        op = self.opcode.value
        if self.opcode is Opcode.LOAD:
            return f"%{self.dest} = load {self.array}[{self.operands[0]}]"
        if self.opcode is Opcode.STORE:
            index, value = self.operands
            return f"store {self.array}[{index}] = {value}"
        if self.opcode is Opcode.CALL:
            args = ", ".join(str(o) for o in self.operands)
            prefix = f"%{self.dest} = " if self.dest else ""
            return f"{prefix}call {self.callee}({args})"
        if self.opcode is Opcode.BR:
            return (f"br {self.operands[0]}, {self.targets[0]}, "
                    f"{self.targets[1]}")
        if self.opcode is Opcode.JMP:
            return f"jmp {self.targets[0]}"
        if self.opcode is Opcode.RET:
            if self.operands:
                return f"ret {self.operands[0]}"
            return "ret"
        args = ", ".join(str(o) for o in self.operands)
        return f"%{self.dest} = {op} {args}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Instruction {self}>"

    def copy(self) -> "Instruction":
        """Shallow structural copy (operands are immutable)."""
        return Instruction(self.opcode, self.dest, self.operands,
                           self.array, self.callee, self.targets)


class ISEInstruction(Instruction):
    """A fused custom instruction bound to an AFU.

    Produced only by the ISE rewriter (:mod:`repro.exec.rewrite`).  Unlike
    every other instruction it may define *several* registers — one per
    AFU output port — carried in :attr:`dests` (``dest`` stays ``None``).
    ``operands`` hold the input-port values in port order; ``afu`` is the
    bound functional unit (anything with ``evaluate(values) -> list`` and
    integer ``latency_cycles``), which the interpreter dispatches to.
    """

    __slots__ = ("afu", "dests")

    def __init__(self, afu, operands: Sequence[Operand],
                 dests: Sequence[str]) -> None:
        self.afu = afu
        self.dests: Tuple[str, ...] = tuple(dests)
        super().__init__(Opcode.ISE, None, operands)

    def defs(self) -> List[str]:
        """All registers written by the custom instruction."""
        return list(self.dests)

    def copy(self) -> "ISEInstruction":
        return ISEInstruction(self.afu, self.operands, self.dests)

    def __str__(self) -> str:
        outs = ", ".join(f"%{d}" for d in self.dests)
        args = ", ".join(str(o) for o in self.operands)
        name = getattr(self.afu, "name", "afu")
        return f"{outs} = ise {name}({args})"


# ----------------------------------------------------------------------
# Convenience constructors, used heavily by the frontend and by tests.
# ----------------------------------------------------------------------
def binop(opcode: Opcode, dest: str, a: Operand, b: Operand) -> Instruction:
    return Instruction(opcode, dest, (a, b))


def unop(opcode: Opcode, dest: str, a: Operand) -> Instruction:
    return Instruction(opcode, dest, (a,))


def select(dest: str, cond: Operand, if_true: Operand,
           if_false: Operand) -> Instruction:
    return Instruction(Opcode.SELECT, dest, (cond, if_true, if_false))


def load(dest: str, array: str, index: Operand) -> Instruction:
    return Instruction(Opcode.LOAD, dest, (index,), array=array)


def store(array: str, index: Operand, value: Operand) -> Instruction:
    return Instruction(Opcode.STORE, None, (index, value), array=array)


def call(dest: Optional[str], callee: str,
         args: Iterable[Operand] = ()) -> Instruction:
    return Instruction(Opcode.CALL, dest, tuple(args), callee=callee)


def br(cond: Operand, then_label: str, else_label: str) -> Instruction:
    return Instruction(Opcode.BR, None, (cond,),
                       targets=(then_label, else_label))


def jmp(label: str) -> Instruction:
    return Instruction(Opcode.JMP, targets=(label,))


def ret(value: Optional[Operand] = None) -> Instruction:
    operands = (value,) if value is not None else ()
    return Instruction(Opcode.RET, operands=operands)


def copy_reg(dest: str, src: Operand) -> Instruction:
    return Instruction(Opcode.COPY, dest, (src,))


__all__ = [
    "Instruction", "ISEInstruction", "binop", "unop", "select", "load",
    "store", "call", "br", "jmp", "ret", "copy_reg", "Const", "Reg",
]

"""A fault-injecting wrapper around any :class:`StoreBackend`.

:class:`FaultyBackend` sits between a real medium and its consumer —
client-side (wrapping a ``NetworkBackend`` inside an
``ArtifactStore``) or server-side (wrapping the backend a
``StoreServer`` serves, so every connected client sees the same
seeded fault schedule).  Each operation first asks the
:class:`~repro.chaos.plan.FaultPlan` what to inject at the ``store``
site, with the operation name (``load``/``store``/``contains``/...)
as the op key:

* ``error`` → raise :class:`~repro.store.backend.BackendError`
  (an answering-but-failing medium: disk full, rejected request);
* ``unavailable`` → raise
  :class:`~repro.store.backend.StoreUnavailable` (medium gone);
* ``delay`` → sleep ``delay_s`` before the operation (slow disk,
  saturated link);
* ``corrupt`` → run the operation, then bit-flip the blob a ``load``
  returned (torn write, bad sector) — the policy layer must read it
  as a miss, never as wrong data.

Everything else delegates untouched, so a zero-fault plan makes the
wrapper a (cheap) identity layer — which is what the chaos benchmark
gates.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional, Tuple

from ..store.backend import (
    BackendError,
    StoreBackend,
    StoreInfo,
    StoreUnavailable,
)
from .plan import FaultPlan, FaultSpec

__all__ = ["FaultyBackend"]


class FaultyBackend(StoreBackend):
    """Inject a plan's ``store``-site faults in front of *inner*.

    ``injected`` counts faults actually injected (delays included);
    the wrapper is transparent for anything the plan leaves alone.
    """

    def __init__(self, inner: StoreBackend, plan: FaultPlan) -> None:
        """Wrap *inner*; the spec (and thus reconnect identity) is the
        inner backend's — a FaultyBackend is an in-process veneer,
        never something a worker reopens by spec."""
        self.inner = inner
        self.plan = plan
        self.spec = inner.spec
        self.root = getattr(inner, "root", inner.spec)
        self.injected = 0

    # ------------------------------------------------------------------
    def _faults(self, op: str) -> Optional[FaultSpec]:
        """Apply pre-operation faults for *op*; returns a ``corrupt``
        spec to apply post-operation, if one was drawn."""
        corrupt: Optional[FaultSpec] = None
        for spec in self.plan.draw("store", op):
            self.injected += 1
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
            elif spec.kind == "unavailable":
                raise StoreUnavailable(
                    f"chaos: injected outage on {op} ({self.spec})")
            elif spec.kind == "corrupt":
                corrupt = spec
            else:                          # "error"
                raise BackendError(
                    f"chaos: injected {spec.kind} on {op} "
                    f"({self.spec})")
        return corrupt

    @staticmethod
    def _mangle(blob: bytes) -> bytes:
        """Deterministically damage *blob* (flip one mid-payload byte
        and truncate the tail) — enough that the policy layer's schema
        check must reject it."""
        if not blob:
            return b"\xff"
        cut = max(1, len(blob) - len(blob) // 4)
        middle = cut // 2
        damaged = bytearray(blob[:cut])
        damaged[middle] ^= 0xFF
        return bytes(damaged)

    # ------------------------------------------------------------------
    def load(self, kind: str, key: str):
        """Inner load, possibly failed, delayed or corrupted."""
        corrupt = self._faults("load")
        blob = self.inner.load(kind, key)
        if corrupt is not None and blob is not None:
            return self._mangle(blob)
        return blob

    def store(self, kind: str, key: str, blob: bytes) -> None:
        """Inner store, possibly failed or delayed (never corrupted —
        a corrupt *write* would poison the medium for fault-free
        readers; corruption is injected on the read path)."""
        self._faults("store")
        self.inner.store(kind, key, blob)

    def contains(self, kind: str, key: str) -> bool:
        """Inner contains, possibly failed or delayed."""
        self._faults("contains")
        return self.inner.contains(kind, key)

    def delete(self, kind: str, key: str) -> None:
        """Inner delete, possibly failed or delayed."""
        self._faults("delete")
        self.inner.delete(kind, key)

    def keys(self) -> Iterator[Tuple[str, str]]:
        """Inner key iteration, possibly failed or delayed."""
        self._faults("keys")
        yield from self.inner.keys()

    def info(self) -> StoreInfo:
        """Inner info, possibly failed or delayed."""
        self._faults("info")
        return self.inner.info()

    def clear(self) -> int:
        """Inner clear, possibly failed or delayed."""
        self._faults("clear")
        return self.inner.clear()

    def gc(self, max_age_days: float) -> Tuple[int, int]:
        """Inner gc, possibly failed or delayed."""
        self._faults("gc")
        return self.inner.gc(max_age_days)

    def close(self) -> None:
        """Close the inner medium (never fault-injected: teardown
        must always succeed)."""
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultyBackend over {self.inner!r}, "
                f"{self.injected} injected>")

"""Wire-protocol fault injection: resets, truncated frames, stalls.

:mod:`repro.wire` exposes one process-wide hook
(:func:`repro.wire.set_fault_hook`) called before every frame is sent
or received.  :func:`fault_hook` builds a hook from a
:class:`~repro.chaos.plan.FaultPlan`'s ``wire``-site specs (ops
``send``/``recv``):

* ``reset`` — close the socket under the caller and raise, the moment
  a peer vanishes mid-conversation;
* ``truncate`` (send only) — ship a prefix of the real frame, then
  close and raise: the peer reads a mid-frame EOF, the hardest wire
  failure to get right;
* ``stall`` — sleep ``delay_s`` before the frame moves (a saturated
  or half-dead link), feeding the leader's unit deadlines.

The hook is process-wide, so it also fires inside server handler
threads — which is how the chaos runner breaks connections it never
holds.  :func:`wire_faults` scopes installation to a ``with`` block
and restores whatever hook was there before.
"""

from __future__ import annotations

import socket
import time
from contextlib import contextmanager
from typing import Callable, Optional

from ..wire import WireError, set_fault_hook
from .plan import FaultPlan

__all__ = ["fault_hook", "wire_faults"]


def fault_hook(plan: FaultPlan) -> Callable:
    """A :func:`repro.wire.set_fault_hook`-compatible hook injecting
    *plan*'s ``wire``-site faults."""

    def hook(sock: socket.socket, op: str,
             frame: Optional[bytes]) -> None:
        for spec in plan.draw("wire", op):
            if spec.kind == "stall":
                time.sleep(spec.delay_s)
            elif spec.kind == "truncate" and op == "send" and frame:
                try:
                    sock.sendall(frame[:max(1, len(frame) // 2)])
                    sock.close()
                except OSError:
                    pass
                raise WireError(
                    "chaos: injected truncated frame on send")
            else:                          # "reset" (and recv-truncate)
                try:
                    sock.close()
                except OSError:
                    pass
                raise WireError(
                    f"chaos: injected connection reset on {op}")

    return hook


@contextmanager
def wire_faults(plan: Optional[FaultPlan]):
    """Install *plan*'s wire faults for the ``with`` scope (no-op when
    *plan* is ``None`` or has no ``wire`` specs); restores the
    previous hook on exit."""
    armed = plan is not None and any(s.site == "wire"
                                     for s in plan.specs)
    previous = set_fault_hook(fault_hook(plan)) if armed else None
    try:
        yield
    finally:
        if armed:
            set_fault_hook(previous)

"""Deterministic fault injection + the chaos soak (DESIGN.md §16).

The chaos fabric has two halves: *injection* — a seeded, declarative
:class:`~repro.chaos.plan.FaultPlan` wired into the store medium
(:class:`~repro.chaos.backend.FaultyBackend`), the wire protocol
(:func:`~repro.chaos.wirefault.wire_faults`) and cluster unit
execution (:meth:`~repro.chaos.plan.FaultPlan.check_unit`) — and the
*soak* (:func:`~repro.chaos.runner.run_chaos`, the ``repro chaos``
verb), which runs a store-backed cluster sweep under a seeded fault
schedule and asserts that every surviving result is bit-identical to
the fault-free run.

``runner`` is imported lazily: worker processes import this package
for :func:`plan_from_env` alone and must not pay for (or cycle into)
the sweep machinery.
"""

from .backend import FaultyBackend
from .plan import (
    CHAOS_PLAN_ENV,
    ChaosInjectedError,
    FaultPlan,
    FaultSpec,
    env_plan,
    plan_from_env,
)
from .wirefault import fault_hook, wire_faults

__all__ = [
    "CHAOS_PLAN_ENV", "ChaosInjectedError", "FaultPlan", "FaultSpec",
    "FaultyBackend", "env_plan", "plan_from_env", "fault_hook",
    "wire_faults", "ChaosReport", "build_plan", "run_chaos",
]


def __getattr__(name: str):
    if name in ("ChaosReport", "build_plan", "run_chaos"):
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")

"""Deterministic, seeded fault plans: the chaos fabric's schedule.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec`
records plus a seed.  Injection sites (the store medium wrapper, the
wire-protocol hook, the cluster unit executor) ask the plan what to
inject before each operation via :meth:`FaultPlan.draw`; the plan
answers from a per-site operation counter and a per-site seeded RNG,
so the same plan over the same per-site operation sequence injects the
same faults — a chaos run is replayable from ``(seed, specs)`` alone.

Two scheduling styles compose freely:

* **probabilistic** — ``FaultSpec(probability=0.05)`` flips a seeded
  coin per eligible operation (transient flakiness);
* **windowed** — ``after``/``until`` bound the site's operation index
  and ``probability=1.0`` makes the window a deterministic outage;
  ``limit`` caps total injections from one spec (e.g. "exactly one
  connection reset").

Plans serialise to JSON and travel to forked cluster workers through
the ``REPRO_CHAOS_PLAN`` environment variable (:func:`env_plan` /
:func:`plan_from_env`) — the same trick the store uses with its spec
strings, so the injection layer needs no wire-protocol changes.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CHAOS_PLAN_ENV", "ChaosInjectedError", "FaultSpec", "FaultPlan",
    "env_plan", "plan_from_env",
]

#: Environment variable carrying a JSON-serialised plan to worker
#: processes (set by :func:`env_plan`, read by :func:`plan_from_env`).
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"


class ChaosInjectedError(RuntimeError):
    """A fault the plan injected on purpose (never a real failure)."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, what, when and how often.

    Sites and kinds the fabric understands:

    * ``site="store"`` (:class:`~repro.chaos.backend.FaultyBackend`;
      ops are backend operation names like ``load``/``store``):
      ``error`` raises ``BackendError``, ``unavailable`` raises
      ``StoreUnavailable``, ``delay`` sleeps ``delay_s``, ``corrupt``
      bit-flips the blob a ``load`` returns;
    * ``site="wire"`` (:func:`~repro.chaos.wirefault.wire_faults`; ops
      are ``send``/``recv``): ``reset`` closes the socket and raises,
      ``truncate`` ships half a frame then resets (send only),
      ``stall`` sleeps ``delay_s`` before the frame moves;
    * ``site="unit"`` (cluster unit execution; ops are unit indexes as
      strings): ``poison`` raises :class:`ChaosInjectedError` from the
      unit body, ``stall``/``delay`` sleep ``delay_s`` in the unit,
      ``kill`` hard-exits the worker *process* mid-unit (skipped
      outside a forked worker, so a kill schedule can never take down
      the leader or a test thread).
    """

    site: str
    kind: str
    probability: float = 1.0
    ops: Tuple[str, ...] = ()
    after: int = 0
    until: Optional[int] = None
    limit: Optional[int] = None
    delay_s: float = 0.0

    def as_dict(self) -> dict:
        """Flat JSON-ready record (``ops`` as a list)."""
        record = asdict(self)
        record["ops"] = list(self.ops)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        """Inverse of :meth:`as_dict`."""
        record = dict(record)
        record["ops"] = tuple(record.get("ops", ()))
        return cls(**record)


@dataclass
class _SiteState:
    """Per-site mutable draw state (operation counter + RNG)."""

    rng: Random
    count: int = 0
    fired: Dict[int, int] = field(default_factory=dict)


class FaultPlan:
    """A seeded schedule of :class:`FaultSpec` records (module doc).

    Thread-safe: concurrent draws from handler threads serialise on
    one lock, so each site sees one deterministic operation sequence.
    Not picklable on purpose — cross-process transport is the JSON/
    environment path, which resets the counters (each process replays
    its own deterministic sequence).
    """

    def __init__(self, seed: int = 0,
                 specs: Tuple[FaultSpec, ...] = ()) -> None:
        """Freeze *specs* under *seed*; draw state starts at zero."""
        self.seed = int(seed)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._sites: Dict[str, _SiteState] = {}

    # ------------------------------------------------------------------
    def _site(self, site: str) -> _SiteState:
        state = self._sites.get(site)
        if state is None:
            # crc32 keeps the per-site stream stable across processes
            # (builtin hash() is salted per interpreter).
            seed = zlib.crc32(f"{self.seed}:{site}".encode())
            state = _SiteState(rng=Random(seed))
            self._sites[site] = state
        return state

    def draw(self, site: str, op: str) -> List[FaultSpec]:
        """The faults to inject for this *site* operation, in spec
        order.  Advances the site's operation counter and consumes one
        seeded uniform per eligible probabilistic spec — so a plan's
        decisions depend only on the per-site operation sequence."""
        with self._lock:
            state = self._site(site)
            index = state.count
            state.count += 1
            hits: List[FaultSpec] = []
            for k, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.ops and op not in spec.ops:
                    continue
                if index < spec.after:
                    continue
                if spec.until is not None and index >= spec.until:
                    continue
                if (spec.limit is not None
                        and state.fired.get(k, 0) >= spec.limit):
                    continue
                if spec.probability < 1.0 \
                        and state.rng.random() >= spec.probability:
                    continue
                state.fired[k] = state.fired.get(k, 0) + 1
                hits.append(spec)
            return hits

    def check_unit(self, index: int, allow_kill: bool = False) -> None:
        """Unit-site injection hook for the cluster fabric.

        Raises :class:`ChaosInjectedError` for a ``poison`` spec;
        ``stall``/``delay`` sleep ``delay_s`` (exercising the leader's
        unit deadline); a ``kill`` spec hard-exits the process when
        *allow_kill* is true (forked cluster workers) and is *skipped*
        otherwise — threads and the leader's inline fallback must
        survive a kill schedule, which is exactly what makes a killed
        unit cost a requeue instead of a lost row."""
        for spec in self.draw("unit", str(index)):
            if spec.kind == "kill":
                if allow_kill:
                    os._exit(3)
                continue
            if spec.kind in ("stall", "delay"):
                time.sleep(spec.delay_s)
                continue
            raise ChaosInjectedError(
                f"chaos: injected {spec.kind} for unit {index}")

    def injected(self, site: Optional[str] = None) -> int:
        """Total faults injected so far (optionally for one site)."""
        with self._lock:
            return sum(sum(state.fired.values())
                       for name, state in self._sites.items()
                       if site is None or name == site)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Compact JSON form (seed + specs; no draw state)."""
        return json.dumps({
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (fresh state)."""
        record = json.loads(text)
        return cls(seed=record.get("seed", 0),
                   specs=tuple(FaultSpec.from_dict(s)
                               for s in record.get("specs", ())))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultPlan seed={self.seed} specs={len(self.specs)}>"


def plan_from_env() -> Optional[FaultPlan]:
    """The plan ``$REPRO_CHAOS_PLAN`` carries, or ``None``.

    An unparsable value is ignored with a fresh empty result rather
    than crashing a worker — chaos must never be the thing that takes
    the fabric down."""
    text = os.environ.get(CHAOS_PLAN_ENV, "").strip()
    if not text:
        return None
    try:
        return FaultPlan.from_json(text)
    except (ValueError, TypeError):
        return None


@contextmanager
def env_plan(plan: Optional[FaultPlan]):
    """Publish *plan* through the environment for the scope of the
    ``with`` block (workers forked inside inherit it); restores the
    previous value on exit.  ``plan=None`` clears the variable."""
    previous = os.environ.get(CHAOS_PLAN_ENV)
    if plan is None:
        os.environ.pop(CHAOS_PLAN_ENV, None)
    else:
        os.environ[CHAOS_PLAN_ENV] = plan.to_json()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(CHAOS_PLAN_ENV, None)
        else:
            os.environ[CHAOS_PLAN_ENV] = previous

"""The chaos soak: a store-backed cluster sweep under seeded faults.

:func:`run_chaos` (the ``repro chaos`` verb) is the fabric's
end-to-end robustness oracle.  It runs the same design-space sweep
twice:

1. **Reference** — serial, against a pristine SQLite store: the
   fault-free rows and store key set;
2. **Chaos** — ``--cluster N`` workers against the same kind of store
   served over TCP through a :class:`~repro.chaos.backend.
   FaultyBackend`, under a seeded :class:`~repro.chaos.plan.
   FaultPlan` injecting flaky store reads, wire resets/truncations, a
   poison unit and a worker kill — while a scheduled server restart
   (or permanent outage) happens mid-run;

then asserts the core invariant: **every surviving result is
bit-identical to the fault-free run**.  Rows must match exactly
(timing fields stripped), the store key sets must match (skipped when
the server is left down — dropped writes are that profile's point),
and the only quarantined unit must be the poisoned one.  Faults cost
retries and requeues — visible in the report — never correctness.

Server profiles: ``"restart"`` stops the store server a beat into the
sweep and brings it back on the same port (retry/backoff must absorb
the outage); ``"down"`` stops it for good (the store must enter
degraded mode and the sweep must still finish); ``"up"`` leaves it
alone (pure injected-fault soak).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from random import Random
from typing import Callable, List, Optional, Tuple

from ..explore.grid import SweepSpec
from ..explore.runner import run_sweep
from ..store.artifacts import ArtifactStore
from ..store.net import NetworkBackend, StoreServer
from ..store.sqlite import SQLiteBackend
from .backend import FaultyBackend
from .plan import FaultPlan, FaultSpec, env_plan
from .wirefault import wire_faults

__all__ = ["ChaosReport", "build_plan", "run_chaos"]

#: Seconds into the chaos sweep the server profile acts (stop, or
#: stop+restart) — late enough that the sweep is mid-flight, early
#: enough that plenty of store traffic follows (the default soak's
#: warm phase runs a few hundred milliseconds).
SERVER_EVENT_S = 0.15

#: Outage length of the ``restart`` profile, seconds.  The client
#: retry budget below is sized to outlast it even at minimum jitter.
RESTART_GAP_S = 0.4


@dataclass
class ChaosReport:
    """Everything one chaos soak measured and asserted."""

    seed: int
    workers: int
    server: str
    warm_units: int = 0
    poison_index: Optional[int] = None
    kill_index: Optional[int] = None
    rows: int = 0
    rows_identical: bool = False
    keys_identical: Optional[bool] = None    # None: skipped (down)
    failed_units: List[dict] = field(default_factory=list)
    failed_expected: bool = False
    retries: int = 0
    injected_store: int = 0
    injected_wire: int = 0
    degraded_events: int = 0
    degraded_skips: int = 0
    store_errors: int = 0
    reference_s: float = 0.0
    chaos_s: float = 0.0
    ok: bool = False
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        """Flat JSON-ready record (the ``repro chaos --json`` output)."""
        return asdict(self)


def build_plan(seed: int, warm_units: int, poison: bool = True,
               kill: bool = True, wire: bool = True,
               flaky_store: bool = True,
               ) -> Tuple[FaultPlan, Optional[int], Optional[int]]:
    """The soak's seeded fault schedule for a *warm_units*-unit sweep.

    Returns ``(plan, poison_index, kill_index)``.  The poison and kill
    targets are distinct seeded choices among the units.  Store faults
    are restricted to *read* operations (``load``/``contains``) plus
    harmless delays: a probabilistic *write* fault would drop a key
    with no retry (the server's answer is authoritative) and break the
    key-set identity the soak asserts — write outages are exercised by
    the server-restart window instead, which the retry budget covers.
    """
    rng = Random(seed)
    poison_index: Optional[int] = None
    kill_index: Optional[int] = None
    specs: List[FaultSpec] = []
    if poison and warm_units > 0:
        poison_index = rng.randrange(warm_units)
        specs.append(FaultSpec(site="unit", kind="poison",
                               ops=(str(poison_index),)))
    if kill and warm_units > 1:
        choices = [i for i in range(warm_units) if i != poison_index]
        kill_index = rng.choice(choices)
        specs.append(FaultSpec(site="unit", kind="kill",
                               ops=(str(kill_index),), limit=1))
    if flaky_store:
        specs.append(FaultSpec(site="store", kind="error",
                               probability=0.05,
                               ops=("load", "contains")))
        specs.append(FaultSpec(site="store", kind="delay",
                               probability=0.05, delay_s=0.005,
                               ops=("load", "store", "contains")))
        specs.append(FaultSpec(site="store", kind="corrupt",
                               probability=0.02, ops=("load",),
                               limit=4))
    if wire:
        specs.append(FaultSpec(site="wire", kind="reset",
                               probability=0.01, limit=2))
        specs.append(FaultSpec(site="wire", kind="truncate",
                               probability=0.01, ops=("send",),
                               limit=1))
        specs.append(FaultSpec(site="wire", kind="stall",
                               probability=0.02, delay_s=0.01,
                               limit=8))
    return FaultPlan(seed=seed, specs=tuple(specs)), poison_index, \
        kill_index


def _strip_rows(rows: List[dict]) -> List[dict]:
    """Rows minus wall-clock fields — the bit-identity comparand."""
    return [{k: v for k, v in row.items() if k != "elapsed_s"}
            for row in rows]


@contextmanager
def _env(name: str, value: Optional[str]):
    """Set (or clear) one environment variable for the scope."""
    previous = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous


def _server_saboteur(holder: dict, profile: str, port: int,
                     backend, say: Callable[[str], None]) -> None:
    """Thread body: stop (and for ``restart`` revive) the store server
    mid-sweep.  ``holder["server"]`` always names the live server (or
    ``None`` while down) so the caller can shut it down afterwards."""
    time.sleep(SERVER_EVENT_S)
    server = holder.get("server")
    if server is None or holder.get("stop"):
        return
    say(f"chaos: stopping store server ({profile})")
    server.shutdown()
    holder["server"] = None
    if profile != "restart":
        return
    time.sleep(RESTART_GAP_S)
    for _attempt in range(20):
        if holder.get("stop"):
            return
        try:
            revived = StoreServer(backend, host="127.0.0.1",
                                  port=port).start()
        except OSError:
            time.sleep(0.1)       # old socket still in TIME_WAIT
            continue
        holder["server"] = revived
        say(f"chaos: store server back on port {port}")
        return
    say("chaos: could not rebind the store server (stays down)")


def run_chaos(
    seed: int = 0,
    workers: int = 2,
    workloads: Tuple[str, ...] = ("fir", "crc32"),
    ports: Tuple[Tuple[int, int], ...] = ((2, 1), (2, 2), (4, 1),
                                          (4, 2)),
    ninstrs: Tuple[int, ...] = (2,),
    algorithms: Tuple[str, ...] = ("iterative", "maxmiso"),
    limit: Optional[int] = 100000,
    n: int = 16,
    server: str = "restart",
    poison: bool = True,
    kill: bool = True,
    wire: bool = True,
    flaky_store: bool = True,
    unit_attempts: int = 4,
    unit_deadline: Optional[float] = 60.0,
    cluster_deadline: Optional[float] = 600.0,
    workdir: Optional[os.PathLike] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> ChaosReport:
    """Run the seeded chaos soak (module doc); returns the report.

    ``report.ok`` is the soak verdict: rows bit-identical, key sets
    bit-identical (``server != "down"``), exactly the poisoned unit
    quarantined, and — for ``server="down"`` — degraded mode entered.
    Never raises on a failed invariant (the report carries the notes);
    raises only on real infrastructure errors.
    """
    say = echo or (lambda _line: None)
    if server not in ("restart", "down", "up"):
        raise ValueError(f"unknown server profile {server!r} "
                         f"(restart/down/up)")
    import tempfile
    base = Path(workdir) if workdir is not None else \
        Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    base.mkdir(parents=True, exist_ok=True)
    spec = SweepSpec(workloads=workloads, ports=ports, ninstrs=ninstrs,
                     algorithms=algorithms, limit=limit, n=n)
    report = ChaosReport(seed=seed, workers=workers, server=server)

    # ---- 1. fault-free serial reference ------------------------------
    say(f"chaos: reference serial sweep ({', '.join(workloads)})")
    start = time.perf_counter()
    ref_store = ArtifactStore(f"sqlite:{base / 'reference.sqlite'}")
    reference = run_sweep(spec, store=ref_store, workers=1)
    report.reference_s = time.perf_counter() - start
    ref_rows = _strip_rows(reference.rows)
    ref_keys = set(ref_store.backend.keys())
    ref_store.close()
    report.warm_units = reference.warm_units
    report.rows = len(reference.rows)

    # ---- 2. the seeded fault schedule --------------------------------
    plan, poison_index, kill_index = build_plan(
        seed, reference.warm_units, poison=poison, kill=kill,
        wire=wire, flaky_store=flaky_store)
    report.poison_index = poison_index
    report.kill_index = kill_index
    say(f"chaos: plan seed={seed}, {len(plan.specs)} spec(s), "
        f"poison unit {poison_index}, kill unit {kill_index}, "
        f"server profile {server!r}")

    # ---- 3. faulty store behind a TCP server --------------------------
    inner = SQLiteBackend(str(base / "chaos.sqlite"))
    faulty = FaultyBackend(inner, plan)
    live = StoreServer(faulty, host="127.0.0.1", port=0).start()
    port = int(live.address.rsplit(":", 1)[1])
    holder: dict = {"server": live, "stop": False}
    saboteur = None
    if server in ("restart", "down"):
        import threading
        saboteur = threading.Thread(
            target=_server_saboteur,
            args=(holder, server, port, faulty, say),
            name="repro-chaos-saboteur", daemon=True)

    # Client/worker retry budgets per profile: "restart" must outlast
    # the outage even at minimum backoff jitter (eight retries at
    # base 0.02s sum to >2s of sleep, well past the ~0.5s gap, and
    # connect-refused attempts are near-instant); "down" must fail
    # fast into degraded mode instead.
    retries = {"restart": 8, "up": 4, "down": 1}[server]
    client = NetworkBackend(live.spec, retries=retries,
                            backoff_s=0.02)
    store = ArtifactStore(client,
                          degrade_after=(3 if server == "down" else 8),
                          probe_every=25)

    # ---- 4. the chaos sweep -------------------------------------------
    say(f"chaos: cluster sweep under faults ({workers} worker(s), "
        f"store {live.spec})")
    start = time.perf_counter()
    try:
        with _env("REPRO_STORE_RETRIES", str(retries)), \
                env_plan(plan), wire_faults(plan):
            if saboteur is not None:
                saboteur.start()
            outcome = run_sweep(
                spec, store=store, workers=1, cluster=workers,
                echo=say, unit_attempts=unit_attempts,
                unit_deadline=unit_deadline,
                cluster_deadline=cluster_deadline)
    finally:
        holder["stop"] = True
        if saboteur is not None:
            saboteur.join(timeout=30.0)
        survivor = holder.get("server")
        if survivor is not None:
            survivor.shutdown()
        client.close()
    report.chaos_s = time.perf_counter() - start

    # ---- 5. the invariants --------------------------------------------
    chaos_rows = _strip_rows(outcome.rows)
    report.rows_identical = chaos_rows == ref_rows
    if not report.rows_identical:
        report.notes.append(
            "rows diverged from the fault-free reference")
    if server != "down":
        chaos_keys = set(inner.keys())   # bypass the fault wrapper
        report.keys_identical = chaos_keys == ref_keys
        if not report.keys_identical:
            missing = len(ref_keys - chaos_keys)
            extra = len(chaos_keys - ref_keys)
            report.notes.append(
                f"store key sets diverged ({missing} missing, "
                f"{extra} extra)")
    report.failed_units = list(outcome.failed_units)
    expected = {poison_index} if poison_index is not None else set()
    got = {unit["index"] for unit in outcome.failed_units}
    report.failed_expected = got == expected
    if not report.failed_expected:
        report.notes.append(
            f"failed units {sorted(got)} != expected "
            f"{sorted(expected)}")
    report.retries = client.retry_count
    report.injected_store = plan.injected("store")
    report.injected_wire = plan.injected("wire")
    report.degraded_events = store.stats.degraded_events
    report.degraded_skips = store.stats.degraded_skips
    report.store_errors = store.stats.errors
    report.ok = (report.rows_identical and report.failed_expected
                 and report.keys_identical is not False)
    if server == "down":
        if report.degraded_events < 1:
            report.notes.append(
                "server-down profile never entered degraded mode")
            report.ok = False
    say(f"chaos: {'OK' if report.ok else 'FAILED'} — "
        f"rows_identical={report.rows_identical}, "
        f"keys_identical={report.keys_identical}, "
        f"failed={sorted(got)}, retries={report.retries}, "
        f"degraded_events={report.degraded_events}")
    inner.close()
    return report

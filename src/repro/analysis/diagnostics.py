"""Diagnostic records of the static-analysis subsystem.

Every check in :mod:`repro.analysis` reports through one vocabulary: a
:class:`Diagnostic` carries a *stable code* (documented in
:data:`CODES`, golden-tested in ``tests/analysis/``), a severity, the
``function/block`` location and a human-readable message.  Codes are
API: tools and CI gates match on them, so a code is never renamed or
reused — retired codes stay reserved.

Code families:

* ``V0xx`` — CFG well-formedness (structure of blocks and terminators);
* ``V1xx`` — per-instruction opcode contracts (arity, operand kinds,
  array/callee symbols, target counts);
* ``V2xx`` — dataflow invariants (def-before-use along all paths,
  destination aliasing);
* ``V3xx`` — post-rewrite ISE contracts (multi-dest/netlist binding,
  memory-op chaining, fused-region schedulability);
* ``S0xx`` — selection-checker violations of the paper's Problem-1
  constraints (convexity, IN/OUT ports, forbidden ops);
* ``C0xx`` — compiled-backend fallback reasons that are not IR
  verification failures (untranslatable, not ill-formed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

#: Stable code -> one-line meaning.  The single source of truth; the
#: verifier, the selection checker and the docs all key into this table
#: (``tests/analysis/test_diagnostics.py`` asserts full coverage).
CODES = {
    # CFG well-formedness.
    "V001": "function has no basic blocks",
    "V002": "basic block has no terminator",
    "V003": "terminator is not the last instruction of its block",
    "V004": "branch target does not name a block of the function",
    "V005": "function block list and label index disagree",
    "V006": "basic block is unreachable from the entry",
    # Opcode contracts.
    "V101": "operand count does not match the opcode's arity",
    "V102": "opcode requires a destination register but has none",
    "V103": "opcode defines no register but a destination is set",
    "V104": "memory opcode has no (or an undeclared) array symbol",
    "V105": "call references an unknown function or wrong arity",
    "V106": "terminator target count does not match its opcode",
    # Dataflow invariants.
    "V201": "register may be read before any definition reaches it",
    "V202": "instruction defines the same register more than once",
    # Post-rewrite ISE contracts.
    "V301": "ISE operand count does not match the AFU's input ports",
    "V302": "ISE destination count does not match the AFU's outputs",
    "V303": "AFU netlist is not in dataflow order or drives no output",
    "V304": "AFU netlist contains an AFU-illegal opcode",
    "V305": "rewrite reordered the block's memory/call chain",
    "V306": "memory-carried dependence cycles through a fused region",
    # Selection constraints (the paper's Problem 1).
    "S001": "cut is not register-convex",
    "S002": "cut reads more values than the read-port budget (IN > Nin)",
    "S003": "cut writes more values than the write-port budget "
            "(OUT > Nout)",
    "S004": "cut contains a forbidden node (memory, call, supernode)",
    "S005": "cut references node indices outside its graph",
    "S006": "cut's recorded metrics disagree with the mask recomputation",
    # Compiled-backend fallback reasons (not IR errors).
    "C001": "block falls back to the walker: untranslatable opcode",
    "C002": "block falls back to the walker: unsupported operand",
    "C003": "region falls back: chain link is not a JMP/BR into the "
            "next block",
}

#: Diagnostic severities.  ``error`` fails gates; ``warning`` is
#: reported but keeps a module "clean" for the CI check gate.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static check.

    Attributes:
        code: stable identifier from :data:`CODES`.
        message: human-readable detail (includes the offending names).
        function: function name, or ``None`` for module-level findings.
        block: block label, or ``None``.
        severity: ``"error"`` or ``"warning"``.
    """

    code: str
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    severity: str = "error"

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """``function/block`` (or as much of it as is known)."""
        if self.function and self.block:
            return f"{self.function}/{self.block}"
        return self.function or self.block or "<module>"

    def render(self) -> str:
        """The canonical one-line form: ``CODE location: message``."""
        return f"{self.code} {self.location}: {self.message}"

    def as_dict(self) -> dict:
        """Flat record for ``repro check --json`` artifacts."""
        return {
            "code": self.code,
            "severity": self.severity,
            "function": self.function,
            "block": self.block,
            "message": self.message,
        }

    def __str__(self) -> str:
        return self.render()


class VerificationError(ValueError):
    """Raised when a verifying caller finds error-severity diagnostics.

    Carries the offending diagnostics so programmatic callers (and test
    assertions) can match on codes instead of parsing the message.
    """

    def __init__(self, context: str,
                 diagnostics: Sequence[Diagnostic]) -> None:
        self.context = context
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        lines = [f"{context}: {len(self.diagnostics)} verifier "
                 f"diagnostic(s)"]
        lines.extend(f"  {d.render()}" for d in self.diagnostics)
        super().__init__("\n".join(lines))


def errors_of(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """The error-severity subset of *diagnostics* (gate currency)."""
    return [d for d in diagnostics if d.severity == "error"]

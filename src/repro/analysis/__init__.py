"""Static analysis and verification (DESIGN.md §13).

Three layers, all pure (no execution, no mutation):

* :mod:`repro.analysis.dataflow` — worklist dataflow framework
  (dominance, reaching definitions, definite assignment; liveness
  re-exported from ``ir/cfg.py``);
* :mod:`repro.analysis.verifier` — module/function verifier with the
  stable diagnostic codes of :mod:`repro.analysis.diagnostics`, plus
  rewrite-specific checks (memory-chain preservation, fused-region
  schedulability);
* :mod:`repro.analysis.selection_check` — an independent, mask-based
  re-validation of selected cuts against the paper's Problem-1
  constraints.

Verification is opt-in on hot paths: :func:`verify_enabled` resolves
``$REPRO_VERIFY`` (off by default; the test suite and CI switch it on).
"""

from .dataflow import (
    DefiniteAssignment,
    Dominance,
    Liveness,
    ReachingDefinitions,
    solve_forward,
)
from .diagnostics import CODES, Diagnostic, VerificationError, errors_of
from .selection_check import assert_cut, check_cut, check_cut_record
from .verifier import (
    assert_verified,
    check_fused_schedule,
    check_rewrite,
    verify_enabled,
    verify_function,
    verify_module,
)

__all__ = [
    "CODES",
    "DefiniteAssignment",
    "Diagnostic",
    "Dominance",
    "Liveness",
    "ReachingDefinitions",
    "VerificationError",
    "assert_cut",
    "assert_verified",
    "check_cut",
    "check_cut_record",
    "check_fused_schedule",
    "check_rewrite",
    "errors_of",
    "solve_forward",
    "verify_enabled",
    "verify_function",
    "verify_module",
]

"""IR verifier: machine-checkable well-formedness with stable codes.

:func:`verify_function` / :func:`verify_module` check, without
executing anything, every structural invariant the rest of the
toolchain silently assumes (codes defined in
:mod:`repro.analysis.diagnostics`):

* **CFG shape** (``V0xx``) — entry exists, every block ends in exactly
  one terminator which is last, branch targets resolve, the label
  index matches the block list, unreachable blocks are flagged (as
  warnings — they are dead weight, not miscompiles);
* **opcode contracts** (``V1xx``) — operand arity from
  :mod:`repro.ir.opcodes`, destination presence, array symbols
  declared, callees resolvable with matching arity, terminator target
  counts;
* **dataflow** (``V2xx``) — def-before-use along **all** paths (a
  forward must-analysis, :class:`~repro.analysis.dataflow.
  DefiniteAssignment`), no instruction defining one register twice;
* **post-rewrite ISE contracts** (``V3xx``) — an
  :class:`~repro.ir.instructions.ISEInstruction`'s operand/dest
  binding must match its bound ``FusedAFU`` netlist, the netlist must
  be in dataflow order, drive every output and contain only AFU-legal
  gates.

:func:`check_rewrite` additionally compares a rewritten clone against
its original: the per-block **memory/call chain** (relative order of
loads, stores and calls — the only ordering the rewrite scheduler must
preserve beyond register dataflow) has to survive the rewrite
verbatim (``V305``).  :func:`check_fused_schedule` is the independent
re-implementation (iterative DFS instead of Kahn's algorithm) of the
rewriter's fused-region schedulability test (``V306``); the rewriter
cross-checks itself against it when verification is on.

Verification is pure analysis: no instruction is executed, no state is
mutated, and a verifier-clean module is exactly as runnable as before.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir.cfg import reachable_blocks
from ..ir.function import BasicBlock, Function, Module
from ..ir.instructions import Instruction, ISEInstruction
from ..ir.opcodes import Opcode, opinfo
from ..ir.values import Reg
from .dataflow import DefiniteAssignment
from .diagnostics import Diagnostic, VerificationError, errors_of

__all__ = [
    "check_fused_schedule", "check_rewrite", "verify_enabled",
    "verify_function", "verify_module",
]


def verify_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve the verification gate against ``$REPRO_VERIFY``.

    An *explicit* True/False wins.  Otherwise the environment decides:
    unset, empty, ``0``, ``off``, ``false`` or ``no`` mean **off** (so
    hot paths — benchmarks, the ``BENCH_*`` CI gates — pay nothing),
    anything else means on.  The test suite switches it on globally in
    ``tests/conftest.py``.
    """
    if explicit is not None:
        return explicit
    value = os.environ.get("REPRO_VERIFY", "").strip().lower()
    return value not in ("", "0", "off", "false", "no")


# ----------------------------------------------------------------------
# Per-instruction contracts.
# ----------------------------------------------------------------------
#: Opcodes whose operand count is not fixed by ``OpInfo.arity``:
#: ``RET`` takes 0 or 1, ``CALL`` matches its callee, ``ISE`` matches
#: its AFU's input ports.
_VARIABLE_ARITY = frozenset({Opcode.RET, Opcode.CALL, Opcode.ISE})

#: Required ``targets`` length per terminator opcode.
_TARGET_COUNTS = {Opcode.BR: 2, Opcode.JMP: 1, Opcode.RET: 0}


def _show(insn: Instruction) -> str:
    """``str(insn)``, robust to the malformations being reported.

    ``Instruction.__str__`` destructures operands (``store`` unpacks
    two), so printing the very instruction whose arity is wrong can
    itself raise — fall back to a flat rendering.
    """
    try:
        return str(insn)
    except Exception:
        args = ", ".join(str(op) for op in insn.operands)
        return f"{insn.opcode.value} {args}".rstrip()


def _check_instruction(
    insn: Instruction,
    func: Function,
    block: BasicBlock,
    module: Optional[Module],
) -> List[Diagnostic]:
    """Opcode-contract diagnostics (``V1xx``/``V3xx``) of one
    instruction."""
    out: List[Diagnostic] = []
    info = opinfo(insn.opcode)
    where = dict(function=func.name, block=block.label)

    def report(code: str, message: str) -> None:
        out.append(Diagnostic(code=code, message=message, **where))

    if (insn.opcode not in _VARIABLE_ARITY
            and len(insn.operands) != info.arity):
        report("V101",
               f"{insn.opcode.value} expects {info.arity} operand(s), "
               f"has {len(insn.operands)}: {_show(insn)}")
    if insn.opcode is Opcode.RET and len(insn.operands) > 1:
        report("V101",
               f"ret expects at most 1 operand, has "
               f"{len(insn.operands)}")
    if (info.has_dest and insn.dest is None
            and insn.opcode is not Opcode.CALL):
        report("V102", f"{insn.opcode.value} requires a destination")
    if not info.has_dest and insn.dest is not None:
        report("V103",
               f"{insn.opcode.value} defines no register but dest is "
               f"%{insn.dest}")
    if insn.opcode in (Opcode.LOAD, Opcode.STORE):
        if insn.array is None:
            report("V104", f"{insn.opcode.value} has no array symbol")
        elif module is not None and insn.array not in module.globals:
            report("V104",
                   f"{insn.opcode.value} addresses undeclared array "
                   f"{insn.array!r}")
    if insn.opcode is Opcode.CALL:
        if insn.callee is None:
            report("V105", "call has no callee")
        elif module is not None:
            callee = module.functions.get(insn.callee)
            if callee is None:
                report("V105",
                       f"call to unknown function {insn.callee!r}")
            elif len(insn.operands) != len(callee.params):
                report("V105",
                       f"call to {insn.callee!r} passes "
                       f"{len(insn.operands)} argument(s), expects "
                       f"{len(callee.params)}")
    expected_targets = _TARGET_COUNTS.get(insn.opcode, 0)
    if len(insn.targets) != expected_targets:
        report("V106",
               f"{insn.opcode.value} carries {len(insn.targets)} "
               f"target(s), expects {expected_targets}")
    defs = insn.defs()
    if len(defs) != len(set(defs)):
        dupes = sorted({d for d in defs if defs.count(d) > 1})
        report("V202",
               f"instruction defines {', '.join('%' + d for d in dupes)}"
               f" more than once: {_show(insn)}")
    if isinstance(insn, ISEInstruction):
        out.extend(
            Diagnostic(code=code, message=message, **where)
            for code, message in _check_ise(insn))
    return out


def _check_ise(insn: ISEInstruction) -> List[Tuple[str, str]]:
    """``V3xx`` contract of one fused instruction against its AFU."""
    out: List[Tuple[str, str]] = []
    afu = insn.afu
    ports = tuple(getattr(afu, "input_ports", ()))
    wires = tuple(getattr(afu, "output_wires", ()))
    gates = tuple(getattr(afu, "gates", ()))
    name = getattr(afu, "name", "afu")
    if len(insn.operands) != len(ports):
        out.append(("V301",
                    f"ise {name} passes {len(insn.operands)} operand(s) "
                    f"to {len(ports)} input port(s)"))
    if len(insn.dests) != len(wires):
        out.append(("V302",
                    f"ise {name} binds {len(insn.dests)} dest(s) to "
                    f"{len(wires)} output wire(s)"))
    driven: Set[str] = set(ports)
    for gate in gates:
        if not opinfo(gate.opcode).afu_legal:
            out.append(("V304",
                        f"ise {name}: gate {gate.output} has AFU-illegal "
                        f"opcode {gate.opcode.value}"))
        for wire in gate.inputs:
            if isinstance(wire, str) and wire not in driven:
                out.append(("V303",
                            f"ise {name}: gate {gate.output} reads "
                            f"undriven wire {wire!r}"))
        driven.add(gate.output)
    gate_outputs = {gate.output for gate in gates}
    for wire in wires:
        if wire not in gate_outputs:
            out.append(("V303",
                        f"ise {name}: output wire {wire!r} is driven by "
                        f"no gate"))
    return out


# ----------------------------------------------------------------------
# Function / module verification.
# ----------------------------------------------------------------------
def _check_label_index(func: Function) -> List[Diagnostic]:
    """``V005``: the block list and the label map must agree."""
    out: List[Diagnostic] = []
    seen: Set[str] = set()
    for block in func.blocks:
        if block.label in seen:
            out.append(Diagnostic(
                code="V005", function=func.name, block=block.label,
                message=f"duplicate block label {block.label!r}"))
        seen.add(block.label)
        if (not func.has_block(block.label)
                or func.block(block.label) is not block):
            out.append(Diagnostic(
                code="V005", function=func.name, block=block.label,
                message=f"label index does not map {block.label!r} to "
                        f"its block (reindex() missing?)"))
    return out


def verify_function(
    func: Function,
    module: Optional[Module] = None,
) -> List[Diagnostic]:
    """All diagnostics of *func* (empty iff verifier-clean).

    Args:
        func: the function to verify.
        module: enclosing module; when given, array symbols and callees
            are resolved against it (``V104``/``V105``).

    Checks run in dependency order: structural CFG problems suppress
    the dataflow pass (whose analyses assume resolvable targets), so a
    broken function reports its root cause rather than an avalanche.
    """
    out: List[Diagnostic] = []
    if not func.blocks:
        return [Diagnostic(code="V001", function=func.name,
                           message="function has no basic blocks")]
    out.extend(_check_label_index(func))
    labels = {b.label for b in func.blocks}
    cfg_broken = bool(out)
    for block in func.blocks:
        if block.terminator is None:
            cfg_broken = True
            out.append(Diagnostic(
                code="V002", function=func.name, block=block.label,
                message="block has no terminator"))
        for pos, insn in enumerate(block.instructions):
            if insn.is_terminator and pos != len(block.instructions) - 1:
                cfg_broken = True
                out.append(Diagnostic(
                    code="V003", function=func.name, block=block.label,
                    message=f"terminator {_show(insn)} at position {pos} is "
                            f"not last"))
        for target in block.successors():
            if target not in labels:
                cfg_broken = True
                out.append(Diagnostic(
                    code="V004", function=func.name, block=block.label,
                    message=f"branch target {target!r} names no block"))
        for insn in block.instructions:
            out.extend(_check_instruction(insn, func, block, module))
    if cfg_broken:
        return out
    reachable = reachable_blocks(func)
    for block in func.blocks:
        if block.label not in reachable:
            out.append(Diagnostic(
                code="V006", function=func.name, block=block.label,
                severity="warning",
                message="block is unreachable from the entry"))
    assigned = DefiniteAssignment(func)
    for block in func.blocks:
        if block.label not in reachable:
            continue
        defined = set(assigned.defined_at_entry(block.label))
        for insn in block.instructions:
            for name in insn.uses():
                if name not in defined:
                    out.append(Diagnostic(
                        code="V201", function=func.name,
                        block=block.label,
                        message=f"%{name} may be read before definition "
                                f"in {_show(insn)}"))
            defined.update(insn.defs())
    return out


def verify_module(module: Module) -> List[Diagnostic]:
    """Concatenated diagnostics of every function of *module*."""
    out: List[Diagnostic] = []
    for func in module.functions.values():
        out.extend(verify_function(func, module))
    return out


def assert_verified(module: Module, context: str) -> None:
    """Raise :class:`VerificationError` on any error-severity
    diagnostic of *module* (warnings pass)."""
    problems = errors_of(verify_module(module))
    if problems:
        raise VerificationError(context, problems)


# ----------------------------------------------------------------------
# Rewrite-specific checks.
# ----------------------------------------------------------------------
def _memory_chain(block: BasicBlock) -> List[Tuple[str, Optional[str]]]:
    """The ordered (opcode, array-or-callee) chain of memory ops and
    calls — the sequence a correct rewrite must preserve verbatim."""
    chain: List[Tuple[str, Optional[str]]] = []
    for insn in block.instructions:
        if insn.is_memory:
            chain.append((insn.opcode.value, insn.array))
        elif insn.opcode is Opcode.CALL:
            chain.append((insn.opcode.value, insn.callee))
    return chain


def check_rewrite(original: Module, rewritten: Module) -> List[Diagnostic]:
    """Diagnostics of a rewritten clone against its *original*.

    Runs the full module verifier over the clone, then compares every
    block's memory/call chain with the original's (``V305``): register
    renaming and macro-op rescheduling may permute pure operations
    freely, but loads, stores and calls must keep their relative order
    (and their array/callee symbols) or the rewrite changed observable
    behaviour.
    """
    out = verify_module(rewritten)
    for func_name, func in rewritten.functions.items():
        source = original.functions.get(func_name)
        if source is None:
            continue
        for block in func.blocks:
            if not source.has_block(block.label):
                continue
            before = _memory_chain(source.block(block.label))
            after = _memory_chain(block)
            if before != after:
                out.append(Diagnostic(
                    code="V305", function=func_name, block=block.label,
                    message=f"memory/call chain changed from {before} "
                            f"to {after}"))
    return out


def check_fused_schedule(
    body: Sequence[Instruction],
    fused_regions: Sequence[Set[int]],
) -> Optional[Diagnostic]:
    """Independent schedulability check of fused regions (``V306``).

    Given the *original* block body and, per cut, the body positions it
    fuses into one atomic macro-op, decide whether any dependence cycle
    runs through a fused unit — the condition under which the cuts
    cannot all issue as single instructions (a memory-carried
    dependence threading through one, invisible to register-dataflow
    convexity).

    This deliberately re-implements the rewriter's test with a
    different algorithm: dependence edges are rebuilt from a positional
    reaching-definition scan plus the memory/call chain, and the cycle
    test is an iterative colouring DFS over macro-units instead of
    Kahn's algorithm.  The rewriter cross-checks every scheduling
    decision (accepting a configuration *and* skipping a cut) against
    this function when verification is on — the two implementations
    must agree before a cut is spliced or dropped.
    """
    unit_of: Dict[int, object] = {
        pos: pos for pos in range(len(body))
    }
    for k, positions in enumerate(fused_regions):
        for pos in positions:
            unit_of[pos] = ("cut", k)
    edges: Dict[object, Set[object]] = {
        unit: set() for unit in set(unit_of.values())
    }
    last_def: Dict[str, int] = {}
    prev_mem: Optional[int] = None
    for pos, insn in enumerate(body):
        for operand in insn.operands:
            if isinstance(operand, Reg) and operand.name in last_def:
                src = unit_of[last_def[operand.name]]
                dst = unit_of[pos]
                if src != dst:
                    edges[src].add(dst)
        if insn.is_memory or insn.opcode is Opcode.CALL:
            if prev_mem is not None:
                src, dst = unit_of[prev_mem], unit_of[pos]
                if src != dst:
                    edges[src].add(dst)
            prev_mem = pos
        if insn.dest is not None:
            last_def[insn.dest] = pos
    # Iterative DFS three-colouring; a back edge on any path through
    # the fused unit means the macro-op graph is cyclic.
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[object, int] = {unit: WHITE for unit in edges}
    for root in edges:
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[object, Optional[object]]] = [(root, None)]
        while stack:
            unit, phase = stack.pop()
            if phase is None:
                if colour[unit] == BLACK:
                    continue
                if colour[unit] == GREY:
                    continue
                colour[unit] = GREY
                stack.append((unit, "exit"))
                for succ in edges[unit]:
                    if colour[succ] == GREY:
                        regions = [sorted(p) for p in fused_regions]
                        return Diagnostic(
                            code="V306",
                            message=f"dependence cycle through the "
                                    f"fused region(s) at positions "
                                    f"{regions}")
                    if colour[succ] == WHITE:
                        stack.append((succ, None))
            else:
                colour[unit] = BLACK
    return None

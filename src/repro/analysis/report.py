"""Check reports: the result surface of ``repro check`` / ``Session.check``.

A :class:`CheckReport` aggregates the three verification phases run
over one workload — the **baseline** module verifier, the independent
**selection** checker over every selected cut, and the **rewritten**
clone check (full module verification plus memory/call-chain
preservation) — keeping each phase's diagnostics separate so the text
and ``--json`` renderings can say *where* a problem lives, not just
that one exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .diagnostics import Diagnostic, errors_of

__all__ = ["CheckReport"]

#: Phase order for rendering (insertion order of Session.check).
PHASES = ("baseline", "selection", "rewritten")


@dataclass
class CheckReport:
    """Verification outcome of one workload across all phases.

    Attributes:
        workload: workload name.
        algorithm: selection algorithm the selection phase used.
        nin / nout / ninstr: the constraint point checked.
        phases: phase name -> diagnostics found in that phase.
        functions: functions verified in the baseline module.
        cuts_checked: cuts re-validated by the independent checker.
        rewritten_blocks: blocks the rewrite phase spliced.
        skipped: rewrite skip notes (cuts left in software).
    """

    workload: str
    algorithm: str
    nin: int
    nout: int
    ninstr: int
    phases: Dict[str, List[Diagnostic]] = field(default_factory=dict)
    functions: int = 0
    cuts_checked: int = 0
    rewritten_blocks: int = 0
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no phase produced an error-severity diagnostic."""
        return not any(errors_of(diags) for diags in self.phases.values())

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """All diagnostics, phase order preserved."""
        out: List[Diagnostic] = []
        for name in PHASES:
            out.extend(self.phases.get(name, ()))
        for name in self.phases:
            if name not in PHASES:
                out.extend(self.phases[name])
        return out

    def as_dict(self) -> dict:
        """JSON-ready record for ``repro check --json`` artifacts."""
        return {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "nin": self.nin,
            "nout": self.nout,
            "ninstr": self.ninstr,
            "ok": self.ok,
            "functions": self.functions,
            "cuts_checked": self.cuts_checked,
            "rewritten_blocks": self.rewritten_blocks,
            "skipped": list(self.skipped),
            "diagnostics": {
                name: [d.as_dict() for d in diags]
                for name, diags in self.phases.items()
            },
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"check {self.workload} ({self.algorithm}, Nin={self.nin}, "
            f"Nout={self.nout}, Ninstr={self.ninstr})"
        ]
        notes = {
            "baseline": f"{self.functions} function(s) verified",
            "selection": f"{self.cuts_checked} cut(s) checked",
            "rewritten": (f"{self.rewritten_blocks} block(s) rewritten"
                          + (f", {len(self.skipped)} cut(s) left in "
                             f"software" if self.skipped else "")),
        }
        for name, diags in self.phases.items():
            errors = errors_of(diags)
            warnings = len(diags) - len(errors)
            verdict = "clean" if not errors else f"{len(errors)} error(s)"
            if warnings:
                verdict += f", {warnings} warning(s)"
            lines.append(f"  {name + ':':11s}{verdict}"
                         f" ({notes.get(name, '')})")
            lines.extend(f"    {d.render()}" for d in diags)
        lines.append(f"result: {'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)

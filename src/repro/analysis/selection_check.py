"""Independent selection checker over ``DFGMasks`` (codes ``S0xx``).

Re-validates any selected cut against the paper's Problem-1
constraints — register-convexity, ``IN(S) <= Nin``, ``OUT(S) <= Nout``,
forbidden-op exclusion — **directly from the bitset masks**, with zero
dependence on ``core/engine.py`` and without calling the
:class:`~repro.ir.dfg.DataFlowGraph` reference helpers
(:meth:`is_convex` / :meth:`cut_inputs` / :meth:`cut_outputs`).  It is
a deliberate second implementation: the search engine enumerates under
an incremental formulation, ``core/cut.py`` recomputes set-wise, and
this module recomputes a third way (transitive-reachability bitsets),
so a bug must strike all three identically to go unnoticed.

The algorithms lean on the reverse-topological node numbering invariant
(every dataflow edge runs from a higher producer index to a lower
consumer index, so ``masks.succ[i]`` only carries bits below ``i``):

* **down-reachability** is a single increasing-index scan
  (``down[i] = succ[i] | union(down[s])``), after which convexity of a
  cut ``S`` is the absence of an excluded node both reachable *from*
  ``S`` and reaching *into* ``S``;
* **IN(S)** is the popcount of the union of member ``producer`` masks
  restricted to externally-produced value bits (input-variable bits are
  always external; a synthetic multi-output-supernode value is external
  iff its owning node is outside the cut);
* **OUT(S)** counts members that are forced out (live-out of the
  block) or have a consumer bit outside the cut.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..ir.dfg import DataFlowGraph
from .diagnostics import Diagnostic, VerificationError, errors_of

__all__ = ["assert_cut", "check_cut", "check_cut_record", "reach_masks"]


def _where(dfg: DataFlowGraph) -> dict:
    """Split the DFG's ``function/block`` name into diagnostic fields."""
    if "/" in dfg.name:
        function, block = dfg.name.split("/", 1)
        return {"function": function, "block": block}
    return {"function": None, "block": dfg.name}


def reach_masks(dfg: DataFlowGraph) -> List[int]:
    """``down[i]``: bits of every node transitively reachable from node
    ``i`` along dataflow (producer -> consumer) edges.

    One pass in increasing index order suffices because all successor
    bits of ``i`` are strictly below ``i`` (reverse topological
    numbering), so each successor's closure is already final.
    """
    succ = dfg.masks.succ
    down = [0] * dfg.n
    for i in range(dfg.n):
        mask = succ[i]
        rem = succ[i]
        while rem:
            low = rem & -rem
            mask |= down[low.bit_length() - 1]
            rem ^= low
        down[i] = mask
    return down


def _input_count(dfg: DataFlowGraph, members: FrozenSet[int],
                 cut_mask: int) -> int:
    """``IN(S)`` from the unified producer masks (values, not nodes)."""
    masks = dfg.masks
    values = 0
    for i in members:
        values |= masks.producer[i]
    synthetic_base = dfg.n + len(dfg.input_vars)
    external = values & ~cut_mask if dfg.n else values
    count = 0
    rem = external
    while rem:
        low = rem & -rem
        vid = low.bit_length() - 1
        rem ^= low
        if vid < synthetic_base:
            # A node-value bit already excluded members via ~cut_mask;
            # an input-variable bit is external by definition.
            count += 1
        elif dfg.value_producer(vid) not in members:
            count += 1
    return count


def _output_count(dfg: DataFlowGraph, members: FrozenSet[int],
                  cut_mask: int) -> int:
    """``OUT(S)``: members whose value escapes the cut."""
    masks = dfg.masks
    count = 0
    for i in members:
        bit = 1 << i
        if masks.forced_out & bit or masks.succ[i] & ~cut_mask:
            count += 1
    return count


def check_cut(
    dfg: DataFlowGraph,
    nodes: Iterable[int],
    nin: int,
    nout: int,
) -> List[Diagnostic]:
    """All ``S0xx`` violations of the cut *nodes* under the port budget.

    Pure recomputation from :class:`~repro.ir.dfg.DFGMasks`; an empty
    list means the cut satisfies every Problem-1 constraint.
    """
    members = frozenset(nodes)
    where = _where(dfg)
    out: List[Diagnostic] = []
    bad = sorted(i for i in members if i < 0 or i >= dfg.n)
    if bad:
        return [Diagnostic(
            code="S005", **where,
            message=f"cut {sorted(members)} references node indices "
                    f"{bad} outside graph of {dfg.n} node(s)")]
    if not members:
        return out
    masks = dfg.masks
    cut_mask = 0
    for i in members:
        cut_mask |= 1 << i
    forbidden = cut_mask & masks.forbidden
    if forbidden:
        names = [dfg.nodes[i].label for i in sorted(members)
                 if (1 << i) & forbidden]
        out.append(Diagnostic(
            code="S004", **where,
            message=f"cut {sorted(members)} contains forbidden "
                    f"node(s) {', '.join(names)}"))
    down = reach_masks(dfg)
    reach_from_cut = 0
    for i in members:
        reach_from_cut |= down[i]
    culprits = []
    rem = reach_from_cut & ~cut_mask
    while rem:
        low = rem & -rem
        x = low.bit_length() - 1
        rem ^= low
        if down[x] & cut_mask:
            culprits.append(x)
    if culprits:
        out.append(Diagnostic(
            code="S001", **where,
            message=f"cut {sorted(members)} is not convex: path "
                    f"re-enters it through excluded node(s) "
                    f"{sorted(culprits)}"))
    num_in = _input_count(dfg, members, cut_mask)
    if num_in > nin:
        out.append(Diagnostic(
            code="S002", **where,
            message=f"cut {sorted(members)} reads {num_in} value(s), "
                    f"budget is Nin={nin}"))
    num_out = _output_count(dfg, members, cut_mask)
    if num_out > nout:
        out.append(Diagnostic(
            code="S003", **where,
            message=f"cut {sorted(members)} writes {num_out} value(s), "
                    f"budget is Nout={nout}"))
    return out


def check_cut_record(cut, nin: int, nout: int) -> List[Diagnostic]:
    """Check a :class:`~repro.core.cut.Cut` record: its constraint
    compliance (``S001``–``S005``) *and* whether its recorded metrics
    match the independent mask recomputation (``S006``).

    The ``S006`` cross-check is what catches engine bugs that produce a
    feasible cut with wrong bookkeeping (the PR-4 input-undercounting
    class): the cut would pass the budget test under its recorded
    numbers while the recomputation disagrees.
    """
    dfg = cut.dfg
    out = check_cut(dfg, cut.nodes, nin, nout)
    if any(d.code == "S005" for d in out):
        return out
    members = frozenset(cut.nodes)
    if members:
        cut_mask = 0
        for i in members:
            cut_mask |= 1 << i
        recomputed: List[Tuple[str, object, object]] = []
        num_in = _input_count(dfg, members, cut_mask)
        num_out = _output_count(dfg, members, cut_mask)
        convex = not any(d.code == "S001" for d in out)
        if cut.num_inputs != num_in:
            recomputed.append(("IN", cut.num_inputs, num_in))
        if cut.num_outputs != num_out:
            recomputed.append(("OUT", cut.num_outputs, num_out))
        if cut.convex != convex:
            recomputed.append(("convex", cut.convex, convex))
        for metric, recorded, actual in recomputed:
            out.append(Diagnostic(
                code="S006", **_where(dfg),
                message=f"cut {sorted(members)} records "
                        f"{metric}={recorded}, mask recomputation says "
                        f"{actual}"))
    return out


def assert_cut(cut, nin: int, nout: int,
               algorithm: Optional[str] = None) -> None:
    """Raise :class:`VerificationError` unless *cut* passes the
    independent checker; the error names the cut, its block, and every
    violated constraint code."""
    problems = errors_of(check_cut_record(cut, nin, nout))
    if problems:
        origin = f"{algorithm} selection" if algorithm else "selection"
        raise VerificationError(
            f"{origin} returned an invalid cut {sorted(cut.nodes)} "
            f"in {cut.dfg.name}", problems)

"""Worklist dataflow framework over the function CFG.

A thin, deterministic fixed-point engine plus the three classic
analyses the verifier (and future passes) need:

* :class:`Dominance` — immediate dominators and dominator sets
  (Cooper/Harvey/Kennedy over reverse postorder);
* :class:`ReachingDefinitions` — which ``(block, position)`` definition
  sites of each register may reach a block entry;
* :class:`DefiniteAssignment` — the *must* counterpart: registers that
  are defined on **every** path from the entry, which is exactly the
  "def-before-use along all paths" obligation of the verifier.

Backward liveness already lives in :class:`repro.ir.cfg.Liveness`; it
is re-exported here so analysis clients have one import surface.

All analyses iterate blocks in reverse postorder (forward problems)
until a fixed point; the CFGs this toolchain builds are small (tens of
blocks), so convergence takes 2–3 sweeps and determinism matters more
than sparseness.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..ir.cfg import Liveness, predecessors, reverse_postorder
from ..ir.function import Function

__all__ = [
    "DefiniteAssignment", "Dominance", "Liveness",
    "ReachingDefinitions", "solve_forward",
]

#: A definition site: (block label, instruction position in the block).
DefSite = Tuple[str, int]


def solve_forward(
    func: Function,
    init: Callable[[str], Set],
    transfer: Callable[[str, Set], Set],
    meet: Callable[[List[Set]], Set],
    entry_in: Set,
) -> Tuple[Dict[str, Set], Dict[str, Set]]:
    """Generic forward dataflow to a fixed point.

    Args:
        func: the function whose CFG is analysed.
        init: label -> initial OUT set (pre-fixed-point optimistic
            value; only read for blocks before their first visit).
        transfer: ``(label, in_set) -> out_set``.
        meet: combine predecessor OUT sets into a block's IN set
            (union for may-problems, intersection for must-problems).
        entry_in: IN set of the entry block.

    Returns:
        ``(in_sets, out_sets)`` by block label.  Unreachable blocks are
        not visited and are absent from both maps.
    """
    order = reverse_postorder(func)
    preds = predecessors(func)
    entry_label = func.entry.label
    in_sets: Dict[str, Set] = {}
    out_sets: Dict[str, Set] = {label: init(label) for label in order}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry_label:
                in_set = set(entry_in)
            else:
                avail = [out_sets[p] for p in preds[label]
                         if p in out_sets]
                in_set = meet(avail) if avail else set()
            out_set = transfer(label, in_set)
            in_sets[label] = in_set
            if out_set != out_sets[label]:
                out_sets[label] = out_set
                changed = True
    return in_sets, out_sets


class Dominance:
    """Immediate dominators of every reachable block.

    The Cooper–Harvey–Kennedy iterative algorithm over reverse
    postorder: simple, deterministic, and at these CFG sizes as fast as
    anything asymptotically better.

    Attributes:
        idom: label -> immediate dominator label (the entry maps to
            itself).  Unreachable blocks are absent.
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        order = reverse_postorder(func)
        index = {label: i for i, label in enumerate(order)}
        preds = predecessors(func)
        entry = func.entry.label
        idom: Dict[str, Optional[str]] = {label: None for label in order}
        idom[entry] = entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for label in order:
                if label == entry:
                    continue
                candidates = [p for p in preds[label]
                              if p in index and idom[p] is not None]
                if not candidates:
                    continue
                new = candidates[0]
                for p in candidates[1:]:
                    new = intersect(new, p)
                if idom[label] != new:
                    idom[label] = new
                    changed = True
        self.idom: Dict[str, str] = {
            label: dom for label, dom in idom.items() if dom is not None
        }

    def dominators(self, label: str) -> List[str]:
        """All dominators of *label*, innermost (itself) first."""
        chain = [label]
        while label != self.idom[label]:
            label = self.idom[label]
            chain.append(label)
        return chain

    def dominates(self, a: str, b: str) -> bool:
        """True when *a* dominates *b* (reflexive)."""
        return a in self.dominators(b)


class ReachingDefinitions:
    """May-reaching definition sites of every register, per block.

    ``reach_in[label]`` holds ``(register, (block, position))`` pairs:
    definition sites that may reach the entry of *label* along some
    path.  Function parameters appear as ``(param, ("<entry>", -1))``.
    """

    PARAM_SITE: DefSite = ("<entry>", -1)

    def __init__(self, func: Function) -> None:
        self.func = func
        gen: Dict[str, Dict[str, DefSite]] = {}
        for block in func.blocks:
            sites: Dict[str, DefSite] = {}
            for pos, insn in enumerate(block.instructions):
                for name in insn.defs():
                    sites[name] = (block.label, pos)
            gen[block.label] = sites

        def transfer(label: str, in_set: Set) -> Set:
            killed = set(gen[label])
            out = {(reg, site) for reg, site in in_set
                   if reg not in killed}
            out.update((reg, site) for reg, site in gen[label].items())
            return out

        entry_in = {(param, self.PARAM_SITE) for param in func.params}
        self.reach_in, self.reach_out = solve_forward(
            func, init=lambda label: set(), transfer=transfer,
            meet=lambda sets: set().union(*sets), entry_in=entry_in)

    def reaching(self, label: str, register: str) -> List[DefSite]:
        """Definition sites of *register* that may reach *label*'s
        entry, deterministically ordered."""
        return sorted(site for reg, site in self.reach_in.get(label, ())
                      if reg == register)


class DefiniteAssignment:
    """Registers definitely assigned (on every path) at block entry.

    The must-dual of :class:`ReachingDefinitions`: IN is the
    *intersection* over predecessors, the entry starts from the
    function parameters, and a block's OUT adds every register it
    defines.  ``defined_in[label]`` is then exactly the set a verifier
    may assume readable at the top of *label* — the basis of the
    def-before-use check (diagnostic ``V201``).
    """

    def __init__(self, func: Function) -> None:
        self.func = func
        all_regs: Set[str] = set(func.params)
        for insn in func.instructions():
            all_regs.update(insn.defs())
        defs: Dict[str, Set[str]] = {}
        for block in func.blocks:
            block_defs: Set[str] = set()
            for insn in block.instructions:
                block_defs.update(insn.defs())
            defs[block.label] = block_defs

        def transfer(label: str, in_set: Set) -> Set:
            return in_set | defs[label]

        def meet(sets: List[Set]) -> Set:
            result = set(sets[0])
            for s in sets[1:]:
                result &= s
            return result

        self.defined_in, self.defined_out = solve_forward(
            func, init=lambda label: set(all_regs), transfer=transfer,
            meet=meet, entry_in=set(func.params))

    def defined_at_entry(self, label: str) -> Set[str]:
        """Registers definitely assigned when *label* is entered
        (empty for unreachable blocks — nothing is guaranteed there)."""
        return self.defined_in.get(label, set())

"""Dynamic cycle accounting for baseline and ISE-rewritten programs.

The static merit model (:mod:`repro.hwmodel.merit`) estimates saved cycles
from the profile the selection was made from.  This module measures the
same quantity *dynamically*: it executes a program in the interpreter and
charges, per basic-block visit,

* the execution-stage software latency of every ordinary operation, and
* ``latency_cycles`` of the bound AFU for every ISE instruction,

so cycle counts reflect the real block frequencies of the run.  Register
copy-backs introduced by the rewriter cost nothing (they model direct
register-file writes of a real ISE; see :mod:`repro.exec.rewrite`), which
the rewriter communicates through its ``block_costs`` overrides.

Invariant (tested): running the original and the rewritten program on the
*same* input gives ``baseline.cycles - rewritten.cycles ==
selection.total_merit`` exactly, because both runs visit blocks with the
frequencies the merit was weighted by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..hwmodel.latency import CostModel
from ..interp.interpreter import Interpreter
from ..interp.memory import Memory
from ..ir.function import Module
from ..ir.opcodes import Opcode


@dataclass(frozen=True)
class CycleReport:
    """Cycle accounting of one execution.

    Attributes:
        cycles: total charged cycles (floats only because cost models may
            be fractional; the default model charges whole cycles).
        steps: instructions the interpreter executed (dynamic count).
        value: return value of the entry function (``None`` for void).
    """

    cycles: float
    steps: int
    value: Optional[int]


def module_block_costs(
    module: Module,
    model: Optional[CostModel] = None,
) -> Dict[Tuple[str, str], float]:
    """Per-block cycle cost of *module* under *model*.

    Ordinary operations charge their software latency; ISE instructions
    charge their AFU's ``latency_cycles``.  For rewritten modules prefer
    the rewriter's ``block_costs`` overrides (they exclude the zero-cost
    architectural copy-backs); this function is the baseline fallback.
    """
    model = model or CostModel()
    costs: Dict[Tuple[str, str], float] = {}
    for func in module.functions.values():
        for block in func.blocks:
            cost = 0.0
            for insn in block.body:
                if insn.opcode is Opcode.ISE:
                    cost += insn.afu.latency_cycles
                else:
                    cost += model.sw_latency.get(insn.opcode, 1)
            costs[(func.name, block.label)] = cost
    return costs


def run_with_cycles(
    module: Module,
    entry: str,
    args: Sequence[int] = (),
    memory: Optional[Memory] = None,
    model: Optional[CostModel] = None,
    cost_overrides: Optional[Dict[Tuple[str, str], float]] = None,
    backend: Optional[str] = None,
) -> CycleReport:
    """Execute ``entry(*args)`` and account cycles per executed block.

    Cycle accounting is backend-agnostic by construction: both engines
    produce identical per-block entry counts (the compiled backend
    aggregates them per call frame, DESIGN.md §11), and the cycle total
    is a pure function of those counts and the static per-block costs.

    Args:
        module: program to run (baseline or ISE-rewritten).
        entry: entry function name.
        args: entry arguments (32-bit wrapped by the interpreter).
        memory: memory image; pass the driver-filled image of a workload
            run (a fresh one is created otherwise).
        model: cost model; must match the selection's model for measured
            and estimated speedups to be comparable.
        cost_overrides: per-block cost replacements, e.g.
            ``RewriteResult.block_costs``.
        backend: execution backend (``"walk"``/``"compiled"``; default
            ``$REPRO_BACKEND``, else compiled) — the reported cycles,
            steps and value are bit-identical either way.

    Returns:
        A :class:`CycleReport` with total cycles, dynamic instruction
        count and the entry's return value.
    """
    costs = module_block_costs(module, model)
    if cost_overrides:
        costs.update(cost_overrides)
    interp = Interpreter(module, memory=memory, backend=backend)
    outcome = interp.run(entry, args)
    cycles = 0.0
    # Sorted iteration: the backends produce identical counts but in
    # different insertion orders (the compiled engine folds callee
    # frames first), and float summation of fractional cost models is
    # order-sensitive — a fixed order keeps the total bit-identical.
    for key, count in sorted(interp.profile.counts.items()):
        cycles += count * costs.get(key, 0.0)
    return CycleReport(cycles=cycles, steps=outcome.steps,
                       value=outcome.value)

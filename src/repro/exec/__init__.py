"""Execution layer: run selected instruction-set extensions for real.

The rest of the system stops at *identifying* custom instructions; this
package closes the paper's loop by rewriting programs to use them
(:mod:`repro.exec.rewrite`), executing the rewritten IR in the
interpreter through functional AFU models, and measuring end-to-end
cycle-count speedups (:mod:`repro.exec.cycles`,
:mod:`repro.exec.speedup`) — the identify -> rewrite -> execute ->
measure pipeline behind ``repro speedup`` and Fig. 9/10-style tables.
"""

from .cycles import CycleReport, module_block_costs, run_with_cycles
from .rewrite import (
    FusedAFU,
    FusedGate,
    RewriteError,
    RewriteResult,
    clone_module,
    rewrite_module,
)
from .speedup import (
    BatchMeasurement,
    MeasuredSpeedup,
    SpeedupRow,
    format_speedup_table,
    measure_baseline,
    measure_batch,
    measure_selection,
    run_speedup,
)

__all__ = [
    "CycleReport", "module_block_costs", "run_with_cycles",
    "FusedAFU", "FusedGate", "RewriteError", "RewriteResult",
    "clone_module", "rewrite_module",
    "BatchMeasurement", "MeasuredSpeedup", "SpeedupRow",
    "format_speedup_table", "measure_baseline", "measure_batch",
    "measure_selection", "run_speedup",
]

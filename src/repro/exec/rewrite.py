"""ISE-aware program rewriting: splice selected cuts back into the IR.

This module closes the paper's loop from *identification* to *execution*:
given the :class:`~repro.core.cut.Cut` list of a selection result, it
rewrites each covered basic block so that the cut's operations are
replaced by a single :class:`~repro.ir.instructions.ISEInstruction` bound
to a :class:`FusedAFU` — a functional netlist evaluated with the exact
32-bit semantics of the interpreter (``evaluate_pure_op``), so rewritten
programs are bit-identical to the originals by construction.

The rewrite is performed on a *clone* of the module (the original stays
runnable as the baseline) in three steps per block:

1. **Reaching definitions** are computed positionally on the original
   instruction order; every definition receives a fresh register name.
   This SSA-style renaming removes all write-after-read/write hazards, so
   the only ordering constraints left are true dataflow dependences plus
   the original relative order of memory operations and calls.
2. Each cut becomes one **macro-operation**; the block is re-scheduled by
   a deterministic topological sort over macro-operations (Kahn's
   algorithm, original program position as tie-break).  A dependence
   *cycle* means the cut is not implementable as an atomic instruction —
   possible when a memory-carried dependence threads through the cut,
   which the paper's register-dataflow convexity test cannot see.  Such
   cuts are *skipped* (left in software) and reported, never silently
   miscompiled.
3. Values that leave the block (live-out registers) are copied back to
   their architectural names before the terminator.  These copies are
   artifacts of the simulation-level renaming — a real ISE writes the
   register file directly — so the cycle accounting in
   :mod:`repro.exec.cycles` charges each rewritten block its uncovered
   software operations plus one AFU latency per cut, and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.cut import Cut
from ..hwmodel.latency import CostModel
from ..hwmodel.merit import cut_area
from ..ir.cfg import Liveness
from ..ir.function import BasicBlock, Function, GlobalArray, Module
from ..ir.instructions import Instruction, ISEInstruction
from ..ir.opcodes import Opcode
from ..ir.values import Const, Reg
from ..passes.constant_folding import evaluate_pure_op


class RewriteError(ValueError):
    """The cuts cannot be spliced into the module (overlapping cuts,
    instructions that are not present, or a cut spanning blocks)."""


@dataclass(frozen=True)
class FusedGate:
    """One operator of a fused AFU netlist.

    ``inputs`` entries are wire/port names (str) or literal int constants;
    ``output`` is the wire the operator drives.  Gates are stored in
    dataflow (producers-first) order, so a single forward sweep evaluates
    the whole netlist.
    """

    opcode: Opcode
    output: str
    inputs: Tuple[object, ...]


@dataclass(frozen=True)
class FusedAFU:
    """The functional model of one custom instruction, bound into the IR.

    Attributes:
        name: unit name (``ise0``, ``ise1``, ...), stable across a rewrite.
        block: ``function/label`` of the home basic block.
        gates: combinational netlist in dataflow order.
        input_ports: port names in the order the ISE instruction passes
            its operand values.
        output_wires: internal wires exposed as results, parallel to the
            ISE instruction's ``dests``.
        latency_cycles: whole-cycle latency of the scheduled datapath
            (``ceil`` of the hardware critical path in MAC units, >= 1).
        software_cycles: execution-stage cycles of the replaced software
            operations (the per-execution numerator of the merit).
        area_mac: datapath area in MAC-equivalents.
    """

    name: str
    block: str
    gates: Tuple[FusedGate, ...]
    input_ports: Tuple[str, ...]
    output_wires: Tuple[str, ...]
    latency_cycles: int
    software_cycles: float
    area_mac: float

    def evaluate(self, values: Sequence[int]) -> List[int]:
        """Evaluate the netlist on input-port *values* (port order).

        Uses the interpreter's own ``evaluate_pure_op``, so AFU results
        can never diverge from the software they replace.  Raises
        ``ZeroDivisionError`` if an internal division traps (the caller
        converts that to the interpreter's ``TrapError``, matching the
        software behaviour).
        """
        env: Dict[str, int] = dict(zip(self.input_ports, values))
        for gate in self.gates:
            operands = [w if isinstance(w, int) else env[w]
                        for w in gate.inputs]
            result = evaluate_pure_op(gate.opcode, operands)
            if result is None:
                raise ZeroDivisionError(
                    f"gate {gate.output} ({gate.opcode}) trapped")
            env[gate.output] = result
        return [env[w] for w in self.output_wires]

    def describe(self) -> str:
        """One-line summary for reports."""
        return (f"AFU {self.name} @ {self.block}: {len(self.gates)} op(s), "
                f"{len(self.input_ports)} in / {len(self.output_wires)} out,"
                f" {self.latency_cycles} cycle(s)")


@dataclass
class RewriteResult:
    """Outcome of :func:`rewrite_module`.

    Attributes:
        module: the rewritten clone (the input module is untouched).
        afus: every fused unit spliced in, in creation order.
        block_costs: ``(function, block label) -> cycles`` for rewritten
            blocks only — uncovered software operations plus one AFU
            latency per cut; register copy-backs cost nothing (see the
            module docstring).  Unrewritten blocks keep their plain
            software cost and are absent from this map.
        rewritten_blocks: number of blocks that received at least one ISE.
        skipped: human-readable notes for cuts that were left in software
            because splicing them would have created a dependence cycle.
    """

    module: Module
    afus: List[FusedAFU] = field(default_factory=list)
    block_costs: Dict[Tuple[str, str], float] = field(default_factory=dict)
    rewritten_blocks: int = 0
    skipped: List[str] = field(default_factory=list)

    @property
    def num_instructions(self) -> int:
        """Number of custom instructions actually spliced in."""
        return len(self.afus)


def clone_module(module: Module) -> Module:
    """Structurally copy *module* (fresh instruction/array objects) so the
    rewrite can mutate blocks while the original stays runnable."""
    clone = Module(module.name)
    for g in module.globals.values():
        clone.add_global(GlobalArray(g.name, g.size, list(g.init)))
    for func in module.functions.values():
        copy = Function(func.name, func.params)
        for block in func.blocks:
            new_block = copy.add_block(block.label)
            for insn in block.instructions:
                new_block.append(insn.copy())
        clone.add_function(copy)
    return clone


# ----------------------------------------------------------------------
# Cut location: map cut nodes back to (function, block, body position).
# ----------------------------------------------------------------------
def _locate_by_label(module: Module, cut: Cut, node) -> Tuple[str, str, int]:
    """Structural fallback when instruction identity fails (cuts that
    crossed a process boundary hold pickled *copies* of the module's
    instructions).  A DFG is named ``function/block`` and node labels
    encode the original body position (``add#5``), both stable from
    build through collapse, so the member instruction is recoverable —
    with its opcode cross-checked before trusting the position."""
    if "/" not in cut.dfg.name:
        raise RewriteError(
            f"cut references instructions that are not part of the "
            f"module and its DFG name {cut.dfg.name!r} does not encode "
            f"a (function, block) location")
    func_name, label = cut.dfg.name.split("/", 1)
    func = module.functions.get(func_name)
    if func is None or not func.has_block(label):
        raise RewriteError(
            f"cut in {cut.dfg.name}: module has no block "
            f"{func_name}/{label}")
    try:
        pos = int(node.label.rsplit("#", 1)[1])
    except (IndexError, ValueError):
        raise RewriteError(
            f"cut in {cut.dfg.name}: node label {node.label!r} does not "
            f"encode a body position")
    body = func.block(label).body
    if pos >= len(body) or body[pos].opcode is not node.opcode:
        raise RewriteError(
            f"cut in {cut.dfg.name}: node {node.label} does not match "
            f"the module's block {func_name}/{label} (was the module "
            f"rebuilt after selection?)")
    return func_name, label, pos


def _locate_cuts(
    module: Module, cuts: Sequence[Cut],
) -> Dict[Tuple[str, str], List[Tuple[Cut, Set[int]]]]:
    index: Dict[int, Tuple[str, str, int]] = {}
    for func in module.functions.values():
        for block in func.blocks:
            for pos, insn in enumerate(block.body):
                index[id(insn)] = (func.name, block.label, pos)

    per_block: Dict[Tuple[str, str], List[Tuple[Cut, Set[int]]]] = {}
    for cut in cuts:
        home: Optional[Tuple[str, str]] = None
        positions: Set[int] = set()
        for i in sorted(cut.nodes):
            node = cut.dfg.nodes[i]
            if node.is_super or len(node.insns) != 1:
                raise RewriteError(
                    f"cut in {cut.dfg.name} contains supernode "
                    f"{node.label}; only plain operation cuts are "
                    f"executable")
            entry = index.get(id(node.insns[0]))
            if entry is None:
                entry = _locate_by_label(module, cut, node)
            func_name, label, pos = entry
            if home is None:
                home = (func_name, label)
            elif home != (func_name, label):
                raise RewriteError(
                    f"cut in {cut.dfg.name} spans blocks {home} and "
                    f"{(func_name, label)}")
            positions.add(pos)
        if home is None:
            continue        # empty cut: nothing to splice
        per_block.setdefault(home, []).append((cut, positions))

    for key, specs in per_block.items():
        seen: Set[int] = set()
        for _cut, positions in specs:
            if seen & positions:
                raise RewriteError(
                    f"cuts overlap in block {key[0]}/{key[1]}; "
                    f"selections must be disjoint to execute")
            seen |= positions
    return per_block


def _name_pool(func: Function):
    """Fresh-register generator avoiding every name used in *func*."""
    used: Set[str] = set(func.params)
    for insn in func.instructions():
        used.update(insn.uses())
        used.update(insn.defs())
    counter = [0]

    def fresh() -> str:
        while True:
            name = f"ise.{counter[0]}"
            counter[0] += 1
            if name not in used:
                used.add(name)
                return name

    return fresh


# ----------------------------------------------------------------------
# Per-block rewriting.
# ----------------------------------------------------------------------
def _reaching_sources(body: List[Instruction], term: Instruction):
    """Positional reaching-def analysis of one block.

    Returns ``(sources, term_sources, last_def)`` where each operand is
    tagged ``('const', value)``, ``('var', live-in name)`` or
    ``('pos', defining body position)`` — order-independent facts the
    re-scheduler can rename against.
    """
    last_def: Dict[str, int] = {}
    sources: List[List[Tuple]] = []
    for pos, insn in enumerate(body):
        row: List[Tuple] = []
        for operand in insn.operands:
            if isinstance(operand, Reg):
                if operand.name in last_def:
                    row.append(("pos", last_def[operand.name]))
                else:
                    row.append(("var", operand.name))
            else:
                row.append(("const", operand.value))
        sources.append(row)
        if insn.dest is not None:
            last_def[insn.dest] = pos
    term_sources: List[Tuple] = []
    for operand in term.operands:
        if isinstance(operand, Reg):
            if operand.name in last_def:
                term_sources.append(("pos", last_def[operand.name]))
            else:
                term_sources.append(("var", operand.name))
        else:
            term_sources.append(("const", operand.value))
    return sources, term_sources, last_def


def _schedule_units(
    body: List[Instruction],
    sources: List[List[Tuple]],
    unit_of: Dict[int, Tuple],
    unit_pos: Dict[Tuple, int],
):
    """Topologically order the block's macro-operations.

    Returns ``(order, stuck)``: the issue order when schedulable
    (``stuck`` empty), otherwise the units caught in a dependence cycle.
    Deterministic: Kahn's algorithm keyed by original program position.
    """
    units = sorted(set(unit_of.values()), key=lambda u: unit_pos[u])
    succs: Dict[Tuple, Set[Tuple]] = {u: set() for u in units}
    indegree: Dict[Tuple, int] = {u: 0 for u in units}

    def add_edge(producer: Tuple, consumer: Tuple) -> None:
        if producer != consumer and consumer not in succs[producer]:
            succs[producer].add(consumer)
            indegree[consumer] += 1

    for pos in range(len(body)):
        for src in sources[pos]:
            if src[0] == "pos":
                add_edge(unit_of[src[1]], unit_of[pos])
    prev_mem: Optional[int] = None
    for pos, insn in enumerate(body):
        if insn.is_memory or insn.opcode is Opcode.CALL:
            if prev_mem is not None:
                add_edge(unit_of[prev_mem], unit_of[pos])
            prev_mem = pos

    import heapq

    ready = [(unit_pos[u], u) for u in units if indegree[u] == 0]
    heapq.heapify(ready)
    order: List[Tuple] = []
    while ready:
        _, unit = heapq.heappop(ready)
        order.append(unit)
        for succ in succs[unit]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (unit_pos[succ], succ))
    stuck = [u for u in units if indegree[u] > 0]
    return order, stuck


def _resolve(source: Tuple, fresh_of: Dict[int, str]):
    """Turn a reaching-def tag into a renamed operand."""
    if source[0] == "const":
        return Const(source[1])
    if source[0] == "var":
        return Reg(source[1])
    return Reg(fresh_of[source[1]])


def _rewrite_block(
    block: BasicBlock,
    block_key: Tuple[str, str],
    cut_specs: List[Tuple[Cut, Set[int]]],
    live_out: Set[str],
    model: CostModel,
    fresh,
    afu_names,
    result: RewriteResult,
    verifying: bool = False,
) -> None:
    body = block.body
    term = block.terminator
    if term is None:
        raise RewriteError(f"block {block_key} has no terminator")
    sources, term_sources, last_def = _reaching_sources(body, term)

    # Consumers of every defining position ('term' marks terminator uses).
    consumers: Dict[int, Set[object]] = {p: set() for p in range(len(body))}
    for pos, row in enumerate(sources):
        for src in row:
            if src[0] == "pos":
                consumers[src[1]].add(pos)
    for src in term_sources:
        if src[0] == "pos":
            consumers[src[1]].add("term")

    fresh_of = {pos: fresh() for pos, insn in enumerate(body)
                if insn.dest is not None}

    # Macro-operation scheduling, dropping cuts that cannot be atomic.
    active = list(range(len(cut_specs)))
    while True:
        cut_of_pos: Dict[int, int] = {}
        for c in active:
            for pos in cut_specs[c][1]:
                cut_of_pos[pos] = c
        unit_of = {
            pos: (("cut", cut_of_pos[pos]) if pos in cut_of_pos
                  else ("op", pos))
            for pos in range(len(body))
        }
        unit_pos = {}
        for pos, unit in unit_of.items():
            unit_pos[unit] = min(unit_pos.get(unit, pos), pos)
        order, stuck = _schedule_units(body, sources, unit_of, unit_pos)
        if verifying:
            # Cross-check this exact fusion configuration against the
            # independent DFS-based schedulability test (V306): the two
            # implementations must agree on accept vs. skip.
            from ..analysis.diagnostics import VerificationError
            from ..analysis.verifier import check_fused_schedule

            independent = check_fused_schedule(
                body, [set(cut_specs[c][1]) for c in active])
            if bool(stuck) != (independent is not None):
                verdict = ("schedulable" if independent is None
                           else independent.message)
                raise VerificationError(
                    f"fused-schedule cross-check disagreement in block "
                    f"{block_key[0]}/{block_key[1]}: scheduler says "
                    f"{'stuck' if stuck else 'schedulable'}, independent "
                    f"check says {verdict}",
                    [independent] if independent is not None else [])
        if not stuck:
            break
        stuck_cuts = sorted(u[1] for u in stuck if u[0] == "cut")
        if not stuck_cuts:
            raise RewriteError(
                f"block {block_key} has a dependence cycle not caused "
                f"by any cut — the input IR is malformed")
        dropped = stuck_cuts[0]
        active.remove(dropped)
        cut = cut_specs[dropped][0]
        result.skipped.append(
            f"{block_key[0]}/{block_key[1]}: cut of {cut.size} node(s) "
            f"(merit {cut.merit:g}) skipped — a memory-carried dependence "
            f"threads through it, so it cannot issue as one instruction")

    if not active:
        # Every cut in this block was skipped: leave the block exactly
        # as it was (no renaming, no cost override, not counted as
        # rewritten).
        return

    new_insns: List[Instruction] = []
    cost = 0.0
    for unit in order:
        if unit[0] == "op":
            pos = unit[1]
            insn = body[pos]
            operands = tuple(_resolve(s, fresh_of) for s in sources[pos])
            new_insns.append(Instruction(
                insn.opcode,
                fresh_of.get(pos),
                operands,
                array=insn.array,
                callee=insn.callee,
            ))
            cost += model.sw_latency.get(insn.opcode, 1)
            continue

        cut, positions = cut_specs[unit[1]]
        members = sorted(positions)
        member_set = set(members)
        ports: List[str] = []
        seen_ports: Set[str] = set()

        def port(name: str) -> str:
            if name not in seen_ports:
                seen_ports.add(name)
                ports.append(name)
            return name

        gates: List[FusedGate] = []
        for pos in members:
            inputs: List[object] = []
            for src in sources[pos]:
                if src[0] == "const":
                    inputs.append(src[1])
                elif src[0] == "var":
                    inputs.append(port(src[1]))
                elif src[1] in member_set:
                    inputs.append(fresh_of[src[1]])
                else:
                    inputs.append(port(fresh_of[src[1]]))
            gates.append(FusedGate(
                opcode=body[pos].opcode,
                output=fresh_of[pos],
                inputs=tuple(inputs),
            ))

        outputs = []
        for pos in members:
            dest = body[pos].dest
            escapes = any(c == "term" or c not in member_set
                          for c in consumers[pos])
            lives_out = last_def.get(dest) == pos and dest in live_out
            if escapes or lives_out:
                outputs.append(pos)

        afu = FusedAFU(
            name=afu_names(),
            block=f"{block_key[0]}/{block_key[1]}",
            gates=tuple(gates),
            input_ports=tuple(ports),
            output_wires=tuple(fresh_of[p] for p in outputs),
            latency_cycles=cut.hardware_cycles,
            software_cycles=cut.software_cycles,
            area_mac=cut_area(cut.dfg, cut.nodes, model),
        )
        new_insns.append(ISEInstruction(
            afu,
            operands=tuple(Reg(p) for p in ports),
            dests=tuple(fresh_of[p] for p in outputs),
        ))
        cost += afu.latency_cycles
        result.afus.append(afu)

    # Architectural write-back: restore live-out registers to their
    # original names (free — a real ISE writes the register file
    # directly; the renaming is a simulation artifact).
    for reg in sorted(live_out):
        pos = last_def.get(reg)
        if pos is not None:
            new_insns.append(Instruction(
                Opcode.COPY, reg, (Reg(fresh_of[pos]),)))
    new_insns.append(Instruction(
        term.opcode,
        None,
        tuple(_resolve(s, fresh_of) for s in term_sources),
        targets=term.targets,
    ))
    block.instructions[:] = new_insns
    result.block_costs[block_key] = cost
    result.rewritten_blocks += 1


def rewrite_module(
    module: Module,
    cuts: Sequence[Cut],
    model: Optional[CostModel] = None,
    verify: Optional[bool] = None,
) -> RewriteResult:
    """Splice *cuts* into a clone of *module* as custom instructions.

    Args:
        module: the program the cuts were selected from (its instruction
            objects must be the ones the cuts' DFG nodes reference —
            true for any :class:`~repro.pipeline.Application`).
        cuts: selected cuts (e.g. ``SelectionResult.cuts``); their node
            sets must be pairwise disjoint per block.
        model: cost model for the cycle accounting of uncovered
            operations; pass the model the selection used so measured
            and estimated speedups are comparable.
        verify: ``True``/``False`` forces verification on/off; ``None``
            follows ``$REPRO_VERIFY``.  When on, every scheduling
            decision is cross-checked against the independent
            fused-schedule test and the rewritten clone must pass
            :func:`repro.analysis.verifier.check_rewrite` (full module
            verification plus memory/call-chain preservation), raising
            :class:`~repro.analysis.diagnostics.VerificationError`
            otherwise.

    Returns:
        A :class:`RewriteResult` whose ``module`` executes bit-identically
        to the input (property-tested across every bundled workload) and
        whose ``block_costs`` drive :mod:`repro.exec.cycles`.
    """
    from ..analysis.verifier import verify_enabled

    model = model or CostModel()
    verifying = verify_enabled(verify)
    per_block = _locate_cuts(module, cuts)
    result = RewriteResult(module=clone_module(module))

    counter = [0]

    def afu_names() -> str:
        name = f"ise{counter[0]}"
        counter[0] += 1
        return name

    for func in result.module.functions.values():
        func_keys = [(func.name, b.label) for b in func.blocks]
        if not any(key in per_block for key in func_keys):
            continue
        liveness = Liveness(func)
        fresh = _name_pool(func)
        for block in list(func.blocks):
            key = (func.name, block.label)
            if key in per_block:
                _rewrite_block(
                    block, key, per_block[key],
                    liveness.live_out_of(block.label),
                    model, fresh, afu_names, result,
                    verifying=verifying,
                )
    if verifying:
        from ..analysis.diagnostics import VerificationError, errors_of
        from ..analysis.verifier import check_rewrite

        problems = errors_of(check_rewrite(module, result.module))
        if problems:
            raise VerificationError(
                f"rewritten clone failed verification "
                f"({result.rewritten_blocks} block(s) rewritten)",
                problems)
    return result

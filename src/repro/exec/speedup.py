"""End-to-end speedup measurement — the paper's Fig. 9/10 numbers, run.

``measure_selection`` takes a prepared application plus a selection
result, rewrites the program (:mod:`repro.exec.rewrite`), executes the
original and the rewritten module on identical driver inputs, checks the
outputs bit-for-bit, and returns measured cycle counts next to the static
estimate.  ``run_speedup`` is the whole-table driver behind the
``repro speedup`` CLI verb and ``benchmarks/bench_speedup.py``.
``measure_batch`` is the serving-scale variant: one prepared workload
over N input lanes per call (DESIGN.md §12), every lane verified
bit-for-bit against a golden reference lane.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

from ..core import (
    BlockTooLargeError,
    Constraints,
    SearchLimits,
    select_area_constrained,
    select_clubbing,
    select_iterative,
    select_maxmiso,
    select_optimal,
)
from ..core.selection import SelectionResult
from ..hwmodel.latency import CostModel
from ..interp.batch import (
    BatchResult,
    driver_lanes,
    image_verifier,
    run_batch,
)
from ..interp.memory import Memory
from ..pipeline import Application, prepare_application
from ..store.keys import callable_fingerprint, canonical_digest, model_digest
from ..workloads.registry import get_workload
from .cycles import run_with_cycles
from .rewrite import rewrite_module


@dataclass
class SpeedupRow:
    """One measured workload: the unit of the Fig. 9/10-style table.

    ``measured_speedup`` is ``baseline_cycles / ise_cycles`` from actual
    execution; ``estimated_speedup`` is the selection's static estimate
    (identical when the measurement input matches the profiling input);
    ``identical`` asserts that every memory word and the return value of
    the rewritten run matched the baseline bit-for-bit.  ``status`` is
    ``"ok"`` normally and ``"n/a"`` when the selection itself refused
    the workload (Optimal on an oversized block — the paper's own
    Fig. 11 note); ``n/a`` rows carry zeros and the refusal in
    ``error``.
    """

    workload: str
    algorithm: str
    nin: int
    nout: int
    ninstr: int
    n: int
    num_instructions: int
    rewritten_blocks: int
    skipped_cuts: int
    baseline_cycles: float
    ise_cycles: float
    measured_speedup: float
    estimated_speedup: float
    total_merit: float
    identical: bool
    steps_baseline: int
    steps_ise: int
    status: str = "ok"
    error: str = ""

    def as_dict(self) -> dict:
        """Flat JSON-ready record (benchmark artifact rows); non-finite
        speedups become ``None`` so artifacts stay strict JSON."""
        record = asdict(self)
        for key in ("measured_speedup", "estimated_speedup"):
            if not math.isfinite(record[key]):
                record[key] = None
        return record


@dataclass
class MeasuredSpeedup:
    """Raw measurement of one (application, selection) pair."""

    baseline_cycles: float
    ise_cycles: float
    identical: bool
    num_instructions: int
    rewritten_blocks: int
    skipped_cuts: int
    steps_baseline: int
    steps_ise: int

    @property
    def speedup(self) -> float:
        """Measured cycles ratio (inf when the rewritten run is free)."""
        if self.ise_cycles <= 0:
            return math.inf
        return self.baseline_cycles / self.ise_cycles


def measure_baseline(app: Application, model: Optional[CostModel] = None,
                     n: Optional[int] = None, store=None,
                     backend: Optional[str] = None):
    """Run the *unmodified* program once and return its accounting.

    Returns ``(CycleReport, Memory)`` — the baseline cycles plus the
    final memory image the rewritten run is compared against.  Baseline
    execution depends only on (workload, n, model), never on ports or
    algorithms, so sweeps measuring many grid points per workload
    compute this once and pass it to :func:`measure_selection`; a
    persistent *store* additionally shares the artifact across
    invocations and between the sweep and speedup paths (keyed on the
    workload source, the unroll-sensitive module text being irrelevant —
    the baseline interprets ``app.module`` as prepared, so the key also
    covers the preparation parameters via the module's own content).
    *backend* selects the execution engine; it is excluded from the
    store key because both backends produce bit-identical reports
    (enforced by the differential suite and CI's interpreter gate).
    """
    workload = get_workload(app.name)
    model = model or CostModel()
    size = n if n is not None else workload.default_n
    key = None
    if store is not None:
        key = canonical_digest("baseline-v1", workload.source,
                               workload.entry, str(app.module),
                               callable_fingerprint(workload.driver),
                               model_digest(model), size)
        hit = store.get("baseline", key)
        if hit is not None:
            return hit
    memory = Memory(app.module)
    args = workload.driver(memory, size)
    report = run_with_cycles(app.module, app.entry, args,
                             memory=memory, model=model, backend=backend)
    if store is not None:
        store.put("baseline", key, (report, memory))
    return report, memory


def measure_selection(
    app: Application,
    selection: SelectionResult,
    model: Optional[CostModel] = None,
    n: Optional[int] = None,
    baseline=None,
    backend: Optional[str] = None,
) -> MeasuredSpeedup:
    """Rewrite *app* with *selection* and measure both programs.

    Args:
        app: prepared application (its module is left untouched; the
            rewrite happens on a clone).
        selection: any ``SelectionResult`` over ``app.dfgs``.
        model: cost model — pass the one the selection used.
        n: measurement input size (default: the workload's); choosing a
            different size than the profiling run shows how well the
            profile generalises.
        baseline: optional precomputed ``(CycleReport, Memory)`` from
            :func:`measure_baseline` with the *same* model and n; the
            baseline run is repeated otherwise.
        backend: execution backend for both runs (``"walk"`` or
            ``"compiled"``; default ``$REPRO_BACKEND``, else compiled)
            — measurements are bit-identical across backends.

    Returns:
        A :class:`MeasuredSpeedup`; ``identical`` is True iff the
        rewritten program's return value and every memory word matched
        the baseline and the workload's golden model accepted the output.
    """
    workload = get_workload(app.name)
    model = model or CostModel()
    size = n if n is not None else workload.default_n

    rewritten = rewrite_module(app.module, selection.cuts, model)

    if baseline is None:
        baseline = measure_baseline(app, model, size, backend=backend)
    base, base_memory = baseline

    ise_memory = Memory(rewritten.module)
    ise_args = workload.driver(ise_memory, size)
    ise = run_with_cycles(rewritten.module, app.entry, ise_args,
                          memory=ise_memory, model=model,
                          cost_overrides=rewritten.block_costs,
                          backend=backend)

    identical = (base.value == ise.value
                 and base_memory.arrays == ise_memory.arrays)
    if identical:
        try:
            workload.verify(ise_memory, size)
        except AssertionError:
            identical = False

    return MeasuredSpeedup(
        baseline_cycles=base.cycles,
        ise_cycles=ise.cycles,
        identical=identical,
        num_instructions=rewritten.num_instructions,
        rewritten_blocks=rewritten.rewritten_blocks,
        skipped_cuts=len(rewritten.skipped),
        steps_baseline=base.steps,
        steps_ise=ise.steps,
    )


@dataclass
class BatchMeasurement:
    """One batched throughput measurement (``repro run --inputs``).

    ``baseline`` holds the per-lane results of executing the prepared
    module over every lane; ``rewritten`` is the same batch on the
    ISE-rewritten module when a selection was given, else ``None``.
    ``identical`` is True iff the golden reference lane passed the
    workload's verifier **and** every lane of every batch matched the
    reference image bit-for-bit (value and all memory words).  Timing
    covers the batch loop including the per-lane image check.
    """

    workload: str
    entry: str
    n: int
    count: int
    backend: str
    baseline: BatchResult
    baseline_seconds: float
    identical: bool
    rewritten: Optional[BatchResult] = None
    rewritten_seconds: float = 0.0

    @property
    def inputs_per_second(self) -> float:
        """Baseline batch throughput (lanes over wall seconds)."""
        return self.count / max(self.baseline_seconds, 1e-9)

    @property
    def rewritten_inputs_per_second(self) -> float:
        """Rewritten batch throughput; 0.0 without a rewritten batch."""
        if self.rewritten is None:
            return 0.0
        return self.count / max(self.rewritten_seconds, 1e-9)

    def as_dict(self) -> dict:
        """Flat JSON-ready record for benchmark artifacts."""
        return {
            "workload": self.workload,
            "entry": self.entry,
            "n": self.n,
            "count": self.count,
            "backend": self.backend,
            "baseline_seconds": self.baseline_seconds,
            "inputs_per_second": self.inputs_per_second,
            "lanes_ok": self.baseline.ok_count,
            "lanes_verified": self.baseline.verified_count,
            "total_steps": self.baseline.total_steps,
            "identical": self.identical,
            "rewritten_seconds": (self.rewritten_seconds
                                  if self.rewritten is not None else None),
            "rewritten_inputs_per_second": (
                self.rewritten_inputs_per_second
                if self.rewritten is not None else None),
            "rewritten_lanes_verified": (
                self.rewritten.verified_count
                if self.rewritten is not None else None),
        }


def measure_batch(app: Application, count: int,
                  model: Optional[CostModel] = None,
                  n: Optional[int] = None,
                  selection: Optional[SelectionResult] = None,
                  backend: Optional[str] = None) -> BatchMeasurement:
    """Execute one prepared workload over *count* input lanes.

    The serving-scale counterpart of :func:`measure_selection`: the
    driver runs **once** (:func:`repro.interp.batch.driver_lanes`), a
    one-lane reference batch is verified against the workload's golden
    model, and then the full batch runs with every lane held to the
    reference's final state bit-for-bit
    (:func:`repro.interp.batch.image_verifier`) — so the reported
    throughput is for *verified* lanes, not unchecked ones.  With a
    *selection* the ISE-rewritten module runs the same lanes against
    the same reference image (rewrites preserve globals and, by the
    bit-exactness obligation, the final memory state).
    """
    workload = get_workload(app.name)
    model = model or CostModel()
    size = n if n is not None else workload.default_n
    lanes = driver_lanes(app.module, workload.driver, size, count)

    reference = run_batch(
        app.module, app.entry, lanes[:1], backend=backend,
        keep_arrays=True,
        verify=lambda memory, lane: workload.verify(memory, size))
    ref = reference.lanes[0]
    if not ref.ok:
        raise RuntimeError(
            f"batch reference lane for {app.name!r} faulted: {ref.trap}")
    identical = ref.verified is True
    check = image_verifier(ref.value, ref.arrays)

    start = time.perf_counter()
    baseline = run_batch(app.module, app.entry, lanes, backend=backend,
                         verify=check)
    baseline_seconds = time.perf_counter() - start
    identical = identical and baseline.verified_count == len(lanes)

    rewritten_batch = None
    rewritten_seconds = 0.0
    if selection is not None:
        rewritten = rewrite_module(app.module, selection.cuts, model)
        start = time.perf_counter()
        rewritten_batch = run_batch(rewritten.module, app.entry, lanes,
                                    backend=backend, verify=check)
        rewritten_seconds = time.perf_counter() - start
        identical = (identical
                     and rewritten_batch.verified_count == len(lanes))

    return BatchMeasurement(
        workload=app.name,
        entry=app.entry,
        n=size,
        count=count,
        backend=baseline.backend,
        baseline=baseline,
        baseline_seconds=baseline_seconds,
        identical=identical,
        rewritten=rewritten_batch,
        rewritten_seconds=rewritten_seconds,
    )


#: Algorithm dispatch shared with the CLI (`repro speedup --algo`).
ALGORITHMS = ("iterative", "optimal", "clubbing", "maxmiso", "area")


def dispatch_selection(algorithm, dfgs, cons, model, limits, workers,
                       max_nodes, area_budget, area_method="knapsack",
                       cache=None):
    """Run one selection algorithm by name (all five families) — the
    single dispatcher behind ``Session.select``, ``repro select`` and
    ``repro speedup``, so every path wires the same knobs."""
    if algorithm == "iterative":
        return select_iterative(dfgs, cons, model, limits, workers=workers,
                                cache=cache)
    if algorithm == "optimal":
        return select_optimal(dfgs, cons, model, limits,
                              max_nodes=max_nodes, workers=workers,
                              cache=cache)
    if algorithm == "clubbing":
        return select_clubbing(dfgs, cons, model)
    if algorithm == "maxmiso":
        return select_maxmiso(dfgs, cons, model)
    if algorithm == "area":
        return select_area_constrained(dfgs, cons, area_budget, model,
                                       limits, method=area_method,
                                       workers=workers, cache=cache)
    known = ", ".join(ALGORITHMS)
    raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}")


def run_speedup(
    workloads: Sequence[str],
    nin: int = 4,
    nout: int = 2,
    ninstr: int = 16,
    algorithm: str = "iterative",
    model: Optional[CostModel] = None,
    limits: Optional[SearchLimits] = None,
    n: Optional[int] = None,
    unroll: Optional[int] = None,
    workers: Optional[int] = None,
    max_nodes: int = 40,
    area_budget: float = 2.0,
    area_method: str = "knapsack",
    store=None,
    cache=None,
    prepare=None,
    backend: Optional[str] = None,
) -> List[SpeedupRow]:
    """Measure end-to-end speedup for every workload in *workloads*.

    For each workload: prepare (compile, profile, verify), select with
    *algorithm* under ``(nin, nout, ninstr)``, rewrite, execute both
    programs on the same input, and assemble a :class:`SpeedupRow`.
    Profiling and measurement share the input size *n*, so measured
    saved cycles equal the selection's merit exactly; the measured
    speedup *ratio* is usually a little below the static estimate
    because the dynamic baseline counts every executed instruction
    while the static one counts only profiled DFG blocks (DESIGN.md
    §9).  ``identical=False`` always means a miscompile.  ``max_nodes``
    guards the ``optimal`` algorithm (``BlockTooLargeError`` beyond
    it); ``area_budget`` (MAC units) applies to ``area``.

    ``store``/``cache``/``prepare`` plug the persistent layer in
    (normally via :meth:`repro.session.Session.speedup` — ``prepare``
    is a ``(name, n, unroll) -> Application`` callable such as the
    session's memoised :meth:`~repro.session.Session.prepare`):
    preparation, identification and the baseline runs warm-start from
    earlier invocations, and the rows stay bit-identical either way.
    ``backend`` picks the execution engine for every measurement run;
    the resulting table and JSON artifacts are byte-identical under
    both backends, which CI's interpreter gate enforces.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; known: "
                         + ", ".join(ALGORITHMS))
    model = model or CostModel()
    rows: List[SpeedupRow] = []
    for name in workloads:
        workload = get_workload(name)
        size = n if n is not None else workload.default_n
        if prepare is not None:
            app = prepare(name, size, unroll)
        else:
            app = prepare_application(name, n=size, unroll=unroll,
                                      store=store, backend=backend)
        constraints = Constraints(nin=nin, nout=nout, ninstr=ninstr)
        try:
            selection = dispatch_selection(
                algorithm, app.dfgs, constraints, model, limits, workers,
                max_nodes, area_budget, area_method=area_method,
                cache=cache)
        except BlockTooLargeError as exc:
            # Degrade per workload (like `repro compare`'s n/a row)
            # instead of aborting the whole table.
            rows.append(SpeedupRow(
                workload=name, algorithm="Optimal", nin=nin, nout=nout,
                ninstr=ninstr, n=size, num_instructions=0,
                rewritten_blocks=0, skipped_cuts=0, baseline_cycles=0.0,
                ise_cycles=0.0, measured_speedup=0.0,
                estimated_speedup=0.0, total_merit=0.0, identical=True,
                steps_baseline=0, steps_ise=0, status="n/a",
                error=str(exc)))
            continue
        baseline = measure_baseline(app, model, n=size, store=store,
                                    backend=backend)
        measured = measure_selection(app, selection, model, n=size,
                                     baseline=baseline, backend=backend)
        rows.append(SpeedupRow(
            workload=name,
            algorithm=selection.algorithm,
            nin=nin,
            nout=nout,
            ninstr=ninstr,
            n=size,
            num_instructions=measured.num_instructions,
            rewritten_blocks=measured.rewritten_blocks,
            skipped_cuts=measured.skipped_cuts,
            baseline_cycles=measured.baseline_cycles,
            ise_cycles=measured.ise_cycles,
            measured_speedup=measured.speedup,
            estimated_speedup=selection.speedup,
            total_merit=selection.total_merit,
            identical=measured.identical,
            steps_baseline=measured.steps_baseline,
            steps_ise=measured.steps_ise,
        ))
    return rows


def format_speedup_table(rows: Sequence[SpeedupRow]) -> str:
    """Fig. 9/10-style text table: one line per measured workload."""
    alg_w = max([10] + [len(row.algorithm) for row in rows])
    header = (f"{'workload':14s} {'algorithm':{alg_w}s} {'instrs':>6s} "
              f"{'base cycles':>12s} {'ISE cycles':>12s} "
              f"{'measured':>9s} {'estimated':>9s}  bit-exact")
    lines = [header, "-" * len(header)]
    for row in rows:
        if row.status != "ok":
            lines.append(f"{row.workload:14s} {row.algorithm:{alg_w}s} "
                         f"n/a ({row.error})")
            continue
        lines.append(
            f"{row.workload:14s} {row.algorithm:{alg_w}s} "
            f"{row.num_instructions:6d} "
            f"{row.baseline_cycles:12.0f} {row.ise_cycles:12.0f} "
            f"{row.measured_speedup:8.3f}x {row.estimated_speedup:8.3f}x"
            f"  {'yes' if row.identical else 'NO'}")
    return "\n".join(lines)

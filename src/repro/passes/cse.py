"""Local common-subexpression elimination via value numbering.

Classic block-local LVN adapted to the non-SSA IR: every definition gets a
fresh value number; a pure instruction whose ``(opcode, operand value
numbers)`` key was already computed — by a register that still holds that
value — becomes a copy of that register.  Commutative operations normalise
their key by sorting operand numbers.

Loads are value-numbered too, keyed by array and index number, but any
store or call invalidates all load numbers (MiniC has no alias analysis —
one store kills everything, which is always safe).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.function import Function
from ..ir.instructions import copy_reg
from ..ir.opcodes import Opcode, opinfo
from ..ir.values import Const, Reg


def local_value_numbering(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        changed = _lvn_block(block) or changed
    return changed


def _lvn_block(block) -> bool:
    next_vn = [0]
    reg_vn: Dict[str, int] = {}         # register -> value number
    const_vn: Dict[int, int] = {}       # constant -> value number
    expr_vn: Dict[Tuple, int] = {}      # expression key -> value number
    vn_home: Dict[int, str] = {}        # value number -> register holding it
    load_keys: List[Tuple] = []         # keys to drop on stores/calls

    def fresh() -> int:
        next_vn[0] += 1
        return next_vn[0]

    def vn_of_operand(op) -> int:
        if isinstance(op, Const):
            if op.value not in const_vn:
                const_vn[op.value] = fresh()
            return const_vn[op.value]
        vn = reg_vn.get(op.name)
        if vn is None:
            vn = fresh()
            reg_vn[op.name] = vn
            vn_home.setdefault(vn, op.name)
        return vn

    changed = False
    for i, insn in enumerate(block.instructions):
        info = opinfo(insn.opcode)
        operand_vns = [vn_of_operand(op) for op in insn.operands]

        key: Optional[Tuple] = None
        if insn.opcode is Opcode.LOAD:
            key = ("load", insn.array, operand_vns[0])
            load_keys.append(key)
        elif (insn.dest is not None and not info.is_memory
                and not info.has_side_effects
                and insn.opcode not in (Opcode.CALL, Opcode.COPY)):
            vns = (sorted(operand_vns) if info.commutative
                   else operand_vns)
            key = (insn.opcode.value, tuple(vns))

        if insn.opcode is Opcode.STORE or insn.opcode is Opcode.CALL:
            for k in load_keys:
                expr_vn.pop(k, None)
            load_keys.clear()

        dest = insn.dest
        if dest is None:
            continue

        if insn.opcode is Opcode.COPY:
            src_vn = operand_vns[0]
            reg_vn[dest] = src_vn
            vn_home.setdefault(src_vn, dest)
            continue

        if key is not None and key in expr_vn:
            vn = expr_vn[key]
            home = vn_home.get(vn)
            if home is not None and reg_vn.get(home) == vn and home != dest:
                block.instructions[i] = copy_reg(dest, Reg(home))
                reg_vn[dest] = vn
                changed = True
                continue

        vn = fresh()
        reg_vn[dest] = vn
        vn_home[vn] = dest
        if key is not None:
            expr_vn[key] = vn

    return changed

"""Copy propagation and copy coalescing.

Two complementary block-local rewrites over the non-SSA IR:

* :func:`propagate_copies` — forward within a block: after ``x = copy y``,
  uses of ``x`` read ``y`` directly until either side is redefined.
  Constants propagate the same way, feeding the constant folder.
* :func:`coalesce_copies` — the IR generator emits ``%t = <op> ...`` then
  ``%x = copy %t`` for every assignment; when ``%t`` has no other use, the
  op writes ``%x`` directly and the copy disappears.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from ..ir.function import Function
from ..ir.opcodes import Opcode
from ..ir.values import Operand, Reg


def propagate_copies(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        available: Dict[str, Operand] = {}
        for insn in block.instructions:
            # Rewrite uses through the available copies.
            if insn.operands:
                new_ops = []
                mutated = False
                for op in insn.operands:
                    while isinstance(op, Reg) and op.name in available:
                        op = available[op.name]
                        mutated = True
                    new_ops.append(op)
                if mutated:
                    insn.operands = tuple(new_ops)
                    changed = True
            # Kill facts invalidated by this definition.
            if insn.dest is not None:
                dest = insn.dest
                available.pop(dest, None)
                stale = [k for k, v in available.items()
                         if isinstance(v, Reg) and v.name == dest]
                for k in stale:
                    available.pop(k)
                if insn.opcode is Opcode.COPY:
                    src = insn.operands[0]
                    if not (isinstance(src, Reg) and src.name == dest):
                        available[dest] = src
    return changed


def coalesce_copies(func: Function) -> bool:
    """Fuse ``%t = op ...; %x = copy %t`` into ``%x = op ...``.

    Safe when, inside one block, ``%t`` is defined by the instruction
    immediately preceding the copy (allowing no intervening redefinition of
    ``%x`` trivially) and ``%t`` has exactly one use in the whole function.
    """
    use_counts: Counter = Counter()
    def_counts: Counter = Counter()
    for insn in func.instructions():
        for name in insn.uses():
            use_counts[name] += 1
        for name in insn.defs():
            def_counts[name] += 1

    changed = False
    for block in func.blocks:
        insns = block.instructions
        for i in range(len(insns) - 1, 0, -1):
            copy = insns[i]
            if copy.opcode is not Opcode.COPY:
                continue
            src = copy.operands[0]
            if not isinstance(src, Reg):
                continue
            producer = insns[i - 1]
            if producer.dest != src.name:
                continue
            if producer.opcode is Opcode.CALL:
                # Calls keep their own result register naming.
                pass
            if use_counts[src.name] != 1 or def_counts[src.name] != 1:
                continue
            if copy.dest == src.name:
                continue
            producer.dest = copy.dest
            del insns[i]
            use_counts[src.name] -= 1
            def_counts[copy.dest] += 0   # dest count unchanged (moved def)
            changed = True
    return changed

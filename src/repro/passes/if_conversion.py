"""If-conversion: turn branching diamonds/triangles into ``SELECT`` dataflow.

The paper preprocesses every benchmark with "a classic if-conversion pass"
— this is what produces the large select-rich basic blocks of its Fig. 3
(the ``SEL`` nodes).  The pass repeatedly looks for two shapes ending in a
common join block ``J``::

      A: br c, T, F            A: br c, T, J
      T: ...; jmp J            T: ...; jmp J        (triangle)
      F: ...; jmp J
          (diamond)

where ``T`` (and ``F``) have no other predecessors and contain only
speculatable instructions: pure ops, and — optionally — loads (MiniC
globals are always mapped, so speculative loads cannot fault as long as
indices stay in bounds on both paths; the workloads are written that way,
matching what a compiler with speculative-load support would do).

Both arms are *renamed* into fresh temporaries and appended to ``A``; every
register assigned by either arm and live into ``J`` gets a
``select(c, t_value, f_value)`` merging the two versions.  ``A`` then jumps
to ``J`` unconditionally, and CFG simplification merges the blocks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.cfg import Liveness, predecessors
from ..ir.function import BasicBlock, Function
from ..ir.instructions import Instruction, jmp, select
from ..ir.opcodes import PURE_OPS, Opcode
from ..ir.values import Operand, Reg


class IfConverter:
    """Configurable if-conversion pass.

    Args:
        speculate_loads: allow ``LOAD`` in converted arms (default True —
            this is required to reproduce the paper's adpcm block).
        max_speculated: skip patterns whose arms together exceed this many
            instructions (guards against absurd speculation).
    """

    def __init__(self, speculate_loads: bool = True,
                 max_speculated: int = 256) -> None:
        self.speculate_loads = speculate_loads
        self.max_speculated = max_speculated

    # ------------------------------------------------------------------
    def _arm_convertible(self, block: BasicBlock) -> bool:
        term = block.terminator
        if term is None or term.opcode is not Opcode.JMP:
            return False
        for insn in block.body:
            if insn.opcode in PURE_OPS:
                continue
            if insn.opcode is Opcode.LOAD and self.speculate_loads:
                continue
            return False
        return True

    @staticmethod
    def _rename_arm(func: Function, block: BasicBlock,
                    ) -> Tuple[List[Instruction], Dict[str, str]]:
        """Copy *block*'s body with all definitions renamed to fresh
        temporaries; later uses inside the arm follow the renaming."""
        mapping: Dict[str, Operand] = {}
        final: Dict[str, str] = {}
        renamed: List[Instruction] = []
        for insn in block.body:
            clone = insn.copy()
            clone.replace_uses(mapping)
            if clone.dest is not None:
                fresh = func.new_temp(".ifc")
                final[clone.dest] = fresh
                mapping[clone.dest] = Reg(fresh)
                clone.dest = fresh
            renamed.append(clone)
        return renamed, final

    # ------------------------------------------------------------------
    def _try_convert(self, func: Function, head: BasicBlock,
                     liveness: Liveness,
                     preds: Dict[str, List[str]]) -> bool:
        term = head.terminator
        if term is None or term.opcode is not Opcode.BR:
            return False
        cond = term.operands[0]
        then_label, else_label = term.targets
        if then_label == else_label:
            return False

        then_block = func.block(then_label)
        else_block = func.block(else_label)

        # Diamond: both arms are dedicated and join at the same block.
        if (self._arm_convertible(then_block)
                and preds[then_label] == [head.label]
                and self._arm_convertible(else_block)
                and preds[else_label] == [head.label]
                and then_block.terminator.targets[0]
                == else_block.terminator.targets[0]
                and then_block.terminator.targets[0] not in (
                    then_label, else_label, head.label)):
            join_label = then_block.terminator.targets[0]
            arms = (then_block, else_block)
        # Triangle: one dedicated arm falling into the other target.
        elif (self._arm_convertible(then_block)
                and preds[then_label] == [head.label]
                and then_block.terminator.targets[0] == else_label
                and else_label != head.label):
            join_label = else_label
            arms = (then_block, None)
        elif (self._arm_convertible(else_block)
                and preds[else_label] == [head.label]
                and else_block.terminator.targets[0] == then_label
                and then_label != head.label):
            join_label = then_label
            arms = (None, else_block)
        else:
            return False

        total = sum(len(a.body) for a in arms if a is not None)
        if total > self.max_speculated:
            return False

        then_arm, else_arm = arms
        then_insns: List[Instruction] = []
        else_insns: List[Instruction] = []
        then_final: Dict[str, str] = {}
        else_final: Dict[str, str] = {}
        if then_arm is not None:
            then_insns, then_final = self._rename_arm(func, then_arm)
        if else_arm is not None:
            else_insns, else_final = self._rename_arm(func, else_arm)

        live_into_join = liveness.live_in_of(join_label)

        merged = sorted(set(then_final) | set(else_final))

        head.instructions.pop()             # remove the branch
        head.instructions.extend(then_insns)
        head.instructions.extend(else_insns)
        if isinstance(cond, Reg) and cond.name in merged:
            # The first select would clobber the condition; snapshot it.
            safe = func.new_temp(".ifc")
            head.instructions.append(
                Instruction(Opcode.COPY, safe, (cond,)))
            cond = Reg(safe)
        for reg in merged:
            if reg not in live_into_join:
                continue                    # dead after the join
            value_t: Operand = Reg(then_final.get(reg, reg))
            value_f: Operand = Reg(else_final.get(reg, reg))
            head.instructions.append(select(reg, cond, value_t, value_f))
        head.instructions.append(jmp(join_label))

        for arm in arms:
            if arm is not None:
                func.remove_block(arm.label)
        return True

    # ------------------------------------------------------------------
    def run(self, func: Function) -> bool:
        """Convert patterns until none remain; return whether any fired."""
        changed = False
        while True:
            liveness = Liveness(func)
            preds = predecessors(func)
            fired = False
            for head in list(func.blocks):
                if self._try_convert(func, head, liveness, preds):
                    fired = True
                    break                   # CFG changed; recompute facts
            if not fired:
                return changed
            changed = True


def if_convert(func: Function, speculate_loads: bool = True,
               max_speculated: int = 256) -> bool:
    """Functional wrapper around :class:`IfConverter`."""
    return IfConverter(speculate_loads, max_speculated).run(func)

"""Source-level loop unrolling.

The paper's conclusions point at "instruction-level parallelism techniques
(e.g. unrolling)" as the way to hand the identification algorithm larger
basic blocks.  This pass implements that preprocessing on the MiniC AST:
counted ``for`` loops of the shape ::

    for (i = C0; i < C1; i += C2) body      (also <=, and i++ / i-- forms)

with a compile-time trip count divisible by the unroll factor, no nested
``break``/``continue``, and a body that does not modify the induction
variable, are rewritten into ``factor`` copies of ``body`` with the
induction step spliced in between.  Everything else is left untouched.

Operating on the AST (rather than the CFG) keeps the transform simple and
composes naturally with the rest of the pipeline: after lowering and
if-conversion the unrolled iterations merge into one big block.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from ..frontend import ast_nodes as ast


@dataclass(frozen=True)
class _CountedLoop:
    var: str
    start: int
    bound: int
    step: int
    inclusive: bool

    @property
    def trip_count(self) -> int:
        limit = self.bound + (1 if self.inclusive else 0)
        if self.step > 0:
            span = limit - self.start
        else:
            span = self.start - (limit - 1)   # not supported; see analyse
        if span <= 0:
            return 0
        return (span + abs(self.step) - 1) // abs(self.step)


def _const_value(expr: Optional[ast.Expr]) -> Optional[int]:
    if isinstance(expr, ast.IntLit):
        return expr.value
    if (isinstance(expr, ast.Unary) and expr.op == "-"
            and isinstance(expr.operand, ast.IntLit)):
        return -expr.operand.value
    return None


def _analyse_for(stmt: ast.For) -> Optional[_CountedLoop]:
    # init: i = C0   (either a Decl with init or an Assign to a Name)
    if isinstance(stmt.init, ast.Decl):
        var = stmt.init.name
        start = _const_value(stmt.init.init)
    elif (isinstance(stmt.init, ast.Assign)
            and isinstance(stmt.init.target, ast.Name)):
        var = stmt.init.target.ident
        start = _const_value(stmt.init.value)
    else:
        return None
    if start is None:
        return None

    # cond: i < C1 or i <= C1
    cond = stmt.cond
    if not (isinstance(cond, ast.Binary) and cond.op in ("<", "<=")
            and isinstance(cond.left, ast.Name) and cond.left.ident == var):
        return None
    bound = _const_value(cond.right)
    if bound is None:
        return None

    # step: i = i + C2 (the parser desugars i++ and i += C2 to this form)
    step_stmt = stmt.step
    if not (isinstance(step_stmt, ast.Assign)
            and isinstance(step_stmt.target, ast.Name)
            and step_stmt.target.ident == var
            and isinstance(step_stmt.value, ast.Binary)
            and step_stmt.value.op in ("+", "-")
            and isinstance(step_stmt.value.left, ast.Name)
            and step_stmt.value.left.ident == var):
        return None
    step = _const_value(step_stmt.value.right)
    if step is None or step == 0:
        return None
    if step_stmt.value.op == "-":
        step = -step
    if step < 0:
        return None                      # only upward-counting loops

    return _CountedLoop(var=var, start=start, bound=bound, step=step,
                        inclusive=cond.op == "<=")


def _body_is_unrollable(body: ast.Block, var: str) -> bool:
    """No break/continue/return, no nested redefinition or write of the
    induction variable."""

    def check_stmt(stmt: ast.Stmt) -> bool:
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Return)):
            return False
        if isinstance(stmt, ast.Decl):
            return stmt.name != var
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.target, ast.Name) and \
                    stmt.target.ident == var:
                return False
            return True
        if isinstance(stmt, ast.Block):
            return all(check_stmt(s) for s in stmt.statements)
        if isinstance(stmt, ast.If):
            ok = all(check_stmt(s) for s in stmt.then_body.statements)
            if stmt.else_body is not None:
                ok = ok and all(check_stmt(s)
                                for s in stmt.else_body.statements)
            return ok
        if isinstance(stmt, (ast.While, ast.For)):
            # Nested loops keep their own break/continue; only the
            # induction variable matters.
            inner = stmt.body
            return all(check_stmt(s) for s in inner.statements)
        return True

    return all(check_stmt(s) for s in body.statements)


def _unroll_for(stmt: ast.For, factor: int) -> Optional[ast.For]:
    info = _analyse_for(stmt)
    if info is None:
        return None
    trips = info.trip_count
    if trips == 0 or trips % factor != 0:
        return None
    if not _body_is_unrollable(stmt.body, info.var):
        return None

    new_body = ast.Block(line=stmt.body.line)
    for k in range(factor):
        # Each copy keeps its own scope so local declarations inside the
        # body do not collide across iterations.
        new_body.statements.append(ast.Block(
            line=stmt.body.line,
            statements=copy.deepcopy(stmt.body.statements)))
        if k != factor - 1:
            new_body.statements.append(copy.deepcopy(stmt.step))
    return ast.For(line=stmt.line, init=copy.deepcopy(stmt.init),
                   cond=copy.deepcopy(stmt.cond),
                   step=copy.deepcopy(stmt.step), body=new_body)


def _walk_block(block: ast.Block, factor: int) -> int:
    count = 0
    for i, stmt in enumerate(block.statements):
        if isinstance(stmt, ast.For):
            unrolled = _unroll_for(stmt, factor)
            if unrolled is not None:
                block.statements[i] = unrolled
                stmt = unrolled
                count += 1
            count += _walk_block(stmt.body, factor)
        elif isinstance(stmt, ast.While):
            count += _walk_block(stmt.body, factor)
        elif isinstance(stmt, ast.If):
            count += _walk_block(stmt.then_body, factor)
            if stmt.else_body is not None:
                count += _walk_block(stmt.else_body, factor)
        elif isinstance(stmt, ast.Block):
            count += _walk_block(stmt, factor)
    return count


def unroll_loops(program: ast.Program, factor: int) -> int:
    """Unroll every eligible counted loop of *program* by *factor*
    (in place).  Returns the number of loops unrolled."""
    if factor < 2:
        raise ValueError("unroll factor must be >= 2")
    total = 0
    for func in program.functions:
        total += _walk_block(func.body, factor)
    return total

"""Dead-code elimination.

Two conservative rules over the non-SSA IR, iterated by the pass manager:

* a pure instruction whose destination register is never read anywhere in
  the function is dead;
* within one block, a pure definition overwritten by a later definition of
  the same register before any possible read (no intervening use, no block
  boundary) is dead.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.function import Function
from ..ir.opcodes import Opcode, opinfo


def _is_removable(insn) -> bool:
    info = opinfo(insn.opcode)
    if info.is_terminator or info.has_side_effects:
        return False
    if insn.opcode is Opcode.CALL:
        return False
    # LOAD is pure in MiniC (no volatile), so an unused load can go.
    return insn.dest is not None


def eliminate_dead_code(func: Function) -> bool:
    changed = False

    # Rule 1: never-read destinations.
    used: Set[str] = set()
    for insn in func.instructions():
        used.update(insn.uses())
    for block in func.blocks:
        kept = []
        for insn in block.instructions:
            if _is_removable(insn) and insn.dest not in used:
                changed = True
                continue
            kept.append(insn)
        block.instructions = kept

    # Rule 2: block-local overwritten definitions.
    for block in func.blocks:
        pending: Dict[str, int] = {}   # reg -> index of unread definition
        dead_indices: Set[int] = set()
        for i, insn in enumerate(block.instructions):
            for name in insn.uses():
                pending.pop(name, None)
            dest = insn.dest
            if dest is not None:
                previous = pending.get(dest)
                if previous is not None and _is_removable(
                        block.instructions[previous]):
                    dead_indices.add(previous)
                if _is_removable(insn):
                    pending[dest] = i
                else:
                    pending.pop(dest, None)
        if dead_indices:
            block.instructions = [
                insn for i, insn in enumerate(block.instructions)
                if i not in dead_indices
            ]
            changed = True

    return changed

"""Pass management: ordered rewrites over IR functions.

Passes are plain callables ``(Function) -> bool`` returning whether
they changed anything.  :class:`PassManager` runs an ordered list of
them — optionally to a fixpoint — and, when verification is on
(explicit ``verify=`` or ``$REPRO_VERIFY``), re-verifies the function
after every pass that reports a change: a pass that breaks a CFG,
opcode or dataflow invariant (see :mod:`repro.analysis.diagnostics`)
is caught at the pass boundary, named in the error, instead of
surfacing later as a miscompile.

:func:`optimize_function` / :func:`optimize_module` run the standard
pipeline the experiments use: cleanup passes to fixpoint, then
if-conversion (the paper's preprocessing step), then cleanup again.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..ir.function import Function, Module

FunctionPass = Callable[[Function], bool]


def _pass_name(p: FunctionPass) -> str:
    owner = getattr(p, "__self__", None)
    if owner is not None:
        return type(owner).__name__
    return getattr(p, "__name__", None) or type(p).__name__


class PassManager:
    """Runs function passes in order, verifying between them.

    Args:
        passes: ordered pass list; each is ``(Function) -> bool``.
        verify: ``True``/``False`` to force verification on/off, or
            ``None`` (default) to follow ``$REPRO_VERIFY``.
        module: enclosing module, so the verifier can resolve array
            symbols and callees (``V104``/``V105``); optional.

    Verification runs after every pass invocation that reported a
    change (an unchanged function cannot have become invalid), raising
    :class:`~repro.analysis.diagnostics.VerificationError` naming the
    offending pass and function.
    """

    def __init__(
        self,
        passes: Iterable[FunctionPass],
        verify: Optional[bool] = None,
        module: Optional[Module] = None,
    ) -> None:
        self.passes: List[FunctionPass] = list(passes)
        self.module = module
        from ..analysis.verifier import verify_enabled

        self.verifying = verify_enabled(verify)

    def _check(self, func: Function, after: FunctionPass) -> None:
        from ..analysis.diagnostics import VerificationError, errors_of
        from ..analysis.verifier import verify_function

        problems = errors_of(verify_function(func, self.module))
        if problems:
            raise VerificationError(
                f"pass {_pass_name(after)!r} broke function "
                f"{func.name!r}", problems)

    def run(self, func: Function) -> bool:
        """One sweep over the pass list; True if anything changed."""
        changed_any = False
        for p in self.passes:
            changed = p(func)
            changed_any = changed_any or changed
            if changed and self.verifying:
                self._check(func, p)
        return changed_any

    def run_to_fixpoint(self, func: Function, max_rounds: int = 20) -> bool:
        """Sweep repeatedly until nothing changes (or round limit)."""
        changed_any = False
        for _ in range(max_rounds):
            if not self.run(func):
                break
            changed_any = True
        return changed_any


def run_to_fixpoint(func: Function, passes: Iterable[FunctionPass],
                    max_rounds: int = 20,
                    verify: Optional[bool] = None,
                    module: Optional[Module] = None) -> bool:
    """Run *passes* repeatedly until nothing changes (or round limit)."""
    manager = PassManager(passes, verify=verify, module=module)
    return manager.run_to_fixpoint(func, max_rounds=max_rounds)


def optimize_function(func: Function, if_convert: bool = True,
                      max_speculated: int = 256,
                      verify: Optional[bool] = None,
                      module: Optional[Module] = None) -> None:
    """The standard optimisation pipeline for one function."""
    from .constant_folding import fold_constants
    from .copyprop import coalesce_copies, propagate_copies
    from .cse import local_value_numbering
    from .dce import eliminate_dead_code
    from .if_conversion import IfConverter
    from .simplify_cfg import simplify_cfg

    cleanup: List[FunctionPass] = [
        simplify_cfg,
        propagate_copies,
        fold_constants,
        coalesce_copies,
        local_value_numbering,
        eliminate_dead_code,
    ]
    manager = PassManager(cleanup, verify=verify, module=module)
    manager.run_to_fixpoint(func)
    if if_convert:
        converter = IfConverter(max_speculated=max_speculated)
        if_manager = PassManager([converter.run], verify=verify,
                                 module=module)
        for _ in range(20):
            changed = if_manager.run(func)
            changed = manager.run_to_fixpoint(func) or changed
            if not changed:
                break


def optimize_module(module: Module, if_convert: bool = True,
                    max_speculated: int = 256,
                    verify: Optional[bool] = None) -> Module:
    """Optimise every function of *module* in place; returns the module."""
    for func in module.functions.values():
        optimize_function(func, if_convert=if_convert,
                          max_speculated=max_speculated,
                          verify=verify, module=module)
    return module

"""Pass management: ordered rewrites over IR functions.

Passes are plain callables ``(Function) -> bool`` returning whether they
changed anything.  :func:`optimize_module` runs the standard pipeline the
experiments use: cleanup passes to fixpoint, then if-conversion (the paper's
preprocessing step), then cleanup again.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..ir.function import Function, Module

FunctionPass = Callable[[Function], bool]


def run_to_fixpoint(func: Function, passes: Iterable[FunctionPass],
                    max_rounds: int = 20) -> bool:
    """Run *passes* repeatedly until nothing changes (or round limit)."""
    passes = list(passes)
    changed_any = False
    for _ in range(max_rounds):
        changed = False
        for p in passes:
            changed = p(func) or changed
        changed_any = changed_any or changed
        if not changed:
            break
    return changed_any


def optimize_function(func: Function, if_convert: bool = True,
                      max_speculated: int = 256) -> None:
    """The standard optimisation pipeline for one function."""
    from .constant_folding import fold_constants
    from .copyprop import coalesce_copies, propagate_copies
    from .cse import local_value_numbering
    from .dce import eliminate_dead_code
    from .if_conversion import IfConverter
    from .simplify_cfg import simplify_cfg

    cleanup: List[FunctionPass] = [
        simplify_cfg,
        propagate_copies,
        fold_constants,
        coalesce_copies,
        local_value_numbering,
        eliminate_dead_code,
    ]
    run_to_fixpoint(func, cleanup)
    if if_convert:
        converter = IfConverter(max_speculated=max_speculated)
        for _ in range(20):
            changed = converter.run(func)
            changed = run_to_fixpoint(func, cleanup) or changed
            if not changed:
                break


def optimize_module(module: Module, if_convert: bool = True,
                    max_speculated: int = 256) -> Module:
    """Optimise every function of *module* in place; returns the module."""
    for func in module.functions.values():
        optimize_function(func, if_convert=if_convert,
                          max_speculated=max_speculated)
    return module

"""IR optimisation passes and the standard pipeline."""

from .constant_folding import evaluate_pure_op, fold_constants
from .copyprop import coalesce_copies, propagate_copies
from .cse import local_value_numbering
from .dce import eliminate_dead_code
from .if_conversion import IfConverter, if_convert
from .loop_unroll import unroll_loops
from .pass_manager import (
    PassManager,
    optimize_function,
    optimize_module,
    run_to_fixpoint,
)
from .simplify_cfg import simplify_cfg

__all__ = [
    "PassManager", "optimize_module", "optimize_function",
    "run_to_fixpoint",
    "simplify_cfg", "propagate_copies", "coalesce_copies",
    "fold_constants", "evaluate_pure_op", "local_value_numbering",
    "eliminate_dead_code", "if_convert", "IfConverter", "unroll_loops",
]

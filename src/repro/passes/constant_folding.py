"""Constant folding and algebraic simplification.

Evaluates pure operations whose operands are all constants, using the same
32-bit two's-complement semantics as the interpreter (:mod:`repro.interp`),
and applies the usual identities (``x+0``, ``x*1``, ``x&0``, shifts by 0,
selects with constant condition, ...).  Folded instructions become copies,
which :mod:`repro.passes.copyprop` then propagates.
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import Instruction, copy_reg
from ..ir.opcodes import Opcode
from ..ir.values import Const, to_unsigned, wrap32


def evaluate_pure_op(opcode: Opcode, values: list) -> Optional[int]:
    """Evaluate *opcode* on constant operand *values* (32-bit wrapping).

    Returns ``None`` when the operation cannot be folded (division by
    zero traps at run time and is left alone).
    """
    if opcode is Opcode.ADD:
        return wrap32(values[0] + values[1])
    if opcode is Opcode.SUB:
        return wrap32(values[0] - values[1])
    if opcode is Opcode.MUL:
        return wrap32(values[0] * values[1])
    if opcode is Opcode.DIV:
        if values[1] == 0:
            return None
        return wrap32(int(values[0] / values[1]))     # trunc toward zero
    if opcode is Opcode.REM:
        if values[1] == 0:
            return None
        return wrap32(values[0] - int(values[0] / values[1]) * values[1])
    if opcode is Opcode.NEG:
        return wrap32(-values[0])
    if opcode is Opcode.AND:
        return wrap32(values[0] & values[1])
    if opcode is Opcode.OR:
        return wrap32(values[0] | values[1])
    if opcode is Opcode.XOR:
        return wrap32(values[0] ^ values[1])
    if opcode is Opcode.NOT:
        return wrap32(~values[0])
    if opcode is Opcode.SHL:
        return wrap32(to_unsigned(values[0]) << (values[1] & 31))
    if opcode is Opcode.LSHR:
        return wrap32(to_unsigned(values[0]) >> (values[1] & 31))
    if opcode is Opcode.ASHR:
        return wrap32(values[0] >> (values[1] & 31))
    if opcode is Opcode.EQ:
        return 1 if values[0] == values[1] else 0
    if opcode is Opcode.NE:
        return 1 if values[0] != values[1] else 0
    if opcode is Opcode.SLT:
        return 1 if values[0] < values[1] else 0
    if opcode is Opcode.SLE:
        return 1 if values[0] <= values[1] else 0
    if opcode is Opcode.SGT:
        return 1 if values[0] > values[1] else 0
    if opcode is Opcode.SGE:
        return 1 if values[0] >= values[1] else 0
    if opcode is Opcode.COPY:
        return wrap32(values[0])
    if opcode is Opcode.SELECT:
        return wrap32(values[1] if values[0] != 0 else values[2])
    return None


_FOLDABLE = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM, Opcode.NEG,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHL, Opcode.LSHR,
    Opcode.ASHR, Opcode.EQ, Opcode.NE, Opcode.SLT, Opcode.SLE, Opcode.SGT,
    Opcode.SGE, Opcode.SELECT,
})


def _simplify_identity(insn: Instruction) -> Optional[Instruction]:
    """Algebraic identities returning a replacement COPY, or ``None``."""
    op = insn.opcode
    ops = insn.operands

    def const(i: int) -> Optional[int]:
        return ops[i].value if isinstance(ops[i], Const) else None

    if op in (Opcode.ADD, Opcode.OR, Opcode.XOR):
        if const(1) == 0:
            return copy_reg(insn.dest, ops[0])
        if const(0) == 0:
            return copy_reg(insn.dest, ops[1])
    if op in (Opcode.SUB, Opcode.SHL, Opcode.LSHR, Opcode.ASHR):
        if const(1) == 0:
            return copy_reg(insn.dest, ops[0])
    if op is Opcode.MUL:
        if const(1) == 1:
            return copy_reg(insn.dest, ops[0])
        if const(0) == 1:
            return copy_reg(insn.dest, ops[1])
        if const(1) == 0 or const(0) == 0:
            return copy_reg(insn.dest, Const(0))
    if op is Opcode.AND:
        if const(1) == 0 or const(0) == 0:
            return copy_reg(insn.dest, Const(0))
        if const(1) == -1:
            return copy_reg(insn.dest, ops[0])
        if const(0) == -1:
            return copy_reg(insn.dest, ops[1])
    if op is Opcode.SELECT:
        cond = const(0)
        if cond is not None:
            return copy_reg(insn.dest, ops[1] if cond != 0 else ops[2])
        if ops[1] == ops[2]:
            return copy_reg(insn.dest, ops[1])
    return None


def fold_constants(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        for i, insn in enumerate(block.instructions):
            if insn.opcode not in _FOLDABLE or insn.dest is None:
                continue
            if all(isinstance(op, Const) for op in insn.operands):
                value = evaluate_pure_op(
                    insn.opcode, [op.value for op in insn.operands])
                if value is not None:
                    block.instructions[i] = copy_reg(insn.dest, Const(value))
                    changed = True
                    continue
            replacement = _simplify_identity(insn)
            if replacement is not None:
                block.instructions[i] = replacement
                changed = True
    return changed

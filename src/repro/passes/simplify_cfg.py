"""Control-flow graph cleanup.

Four rewrites, iterated to a fixpoint by the pass manager:

1. fold conditional branches with constant conditions into jumps;
2. delete blocks unreachable from the entry;
3. forward jumps through empty blocks (blocks whose only instruction is a
   jump);
4. merge a block into its unique predecessor when that predecessor's only
   successor is the block (straight-line merging) — this is what grows the
   big post-if-conversion basic blocks.
"""

from __future__ import annotations

from typing import Dict

from ..ir.cfg import predecessors, reachable_blocks
from ..ir.function import Function
from ..ir.instructions import jmp
from ..ir.opcodes import Opcode
from ..ir.values import Const


def _fold_constant_branches(func: Function) -> bool:
    changed = False
    for block in func.blocks:
        term = block.terminator
        if term is None or term.opcode is not Opcode.BR:
            continue
        cond = term.operands[0]
        if isinstance(cond, Const):
            target = term.targets[0] if cond.value != 0 else term.targets[1]
            block.instructions[-1] = jmp(target)
            changed = True
        elif term.targets[0] == term.targets[1]:
            block.instructions[-1] = jmp(term.targets[0])
            changed = True
    return changed


def _remove_unreachable(func: Function) -> bool:
    reachable = reachable_blocks(func)
    dead = [b.label for b in func.blocks if b.label not in reachable]
    for label in dead:
        func.remove_block(label)
    return bool(dead)


def _forward_empty_blocks(func: Function) -> bool:
    """Retarget branches that go to a block containing only ``jmp X``."""
    forward: Dict[str, str] = {}
    for block in func.blocks:
        if len(block.instructions) == 1:
            term = block.terminator
            if term is not None and term.opcode is Opcode.JMP:
                forward[block.label] = term.targets[0]

    def resolve(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    changed = False
    for block in func.blocks:
        term = block.terminator
        if term is None or not term.targets:
            continue
        new_targets = tuple(resolve(t) for t in term.targets)
        if new_targets != term.targets:
            # Self-forwarding empty infinite loops resolve to themselves.
            if block.label not in new_targets or term.opcode is Opcode.BR:
                term.targets = new_targets
                changed = True
    return changed


def _merge_straight_line(func: Function) -> bool:
    changed = False
    while True:
        preds = predecessors(func)
        merged = False
        for block in list(func.blocks):
            term = block.terminator
            if term is None or term.opcode is not Opcode.JMP:
                continue
            succ_label = term.targets[0]
            if succ_label == block.label:
                continue
            if preds[succ_label] != [block.label]:
                continue
            succ = func.block(succ_label)
            if succ is func.entry:
                continue
            block.instructions.pop()            # drop the jump
            block.instructions.extend(succ.instructions)
            func.remove_block(succ_label)
            merged = True
            changed = True
            break
        if not merged:
            return changed


def simplify_cfg(func: Function) -> bool:
    """Run all CFG cleanups once; return whether anything changed."""
    changed = _fold_constant_branches(func)
    changed = _remove_unreachable(func) or changed
    changed = _forward_empty_blocks(func) or changed
    changed = _remove_unreachable(func) or changed
    changed = _merge_straight_line(func) or changed
    return changed

"""repro — Automatic application-specific instruction-set extensions under
microarchitectural constraints.

A complete reproduction of Atasu, Pozzi & Ienne (DAC 2003 / IJPP 31(6),
2003): exact identification of maximal-merit convex dataflow subgraphs
under register-file port constraints, optimal and iterative selection of
up to ``Ninstr`` custom instructions, the Clubbing and MaxMISO baselines,
an execution layer that rewrites programs to *run* the selected
instructions and measures end-to-end cycle-count speedups, and everything
underneath — a MiniC compiler, an IR with CFG/DFG analyses,
if-conversion, an interpreter/profiler, hardware cost models and AFU
datapath generation.

Quickstart::

    from repro import Session

    session = Session()      # persistent store: ~/.cache/repro
    result = session.select("adpcm-decode", ninstr=16)
    print(result.describe())
    rows = session.speedup(["adpcm-decode"])   # rewrite + execute
    print(f"measured speedup {rows[0].measured_speedup:.3f}x "
          f"(bit-exact: {rows[0].identical})")
    # Re-running this script warm-starts from the store: compilation,
    # profiling, the exponential searches and the baseline run are all
    # read back instead of recomputed — bit-identical, near-instant.
"""

from .core import (
    BlockTooLargeError,
    Constraints,
    Cut,
    MultiCutResult,
    SearchLimits,
    SearchResult,
    SearchStats,
    SelectionResult,
    enumerate_feasible_cuts,
    evaluate_cut,
    find_best_cut,
    find_best_cuts,
    select_area_constrained,
    select_clubbing,
    select_iterative,
    select_maxmiso,
    select_optimal,
)
from .exec import (
    FusedAFU,
    MeasuredSpeedup,
    RewriteResult,
    SpeedupRow,
    measure_selection,
    rewrite_module,
    run_speedup,
)
from .explore import SearchCache, SweepOutcome, SweepSpec, run_sweep
from .hwmodel import CostModel, estimated_speedup, uniform_cost_model
from .pipeline import Application, compile_workload, prepare_application
from .session import Session
from .store import ArtifactStore, StoreStats, default_store_dir
from .workloads import WORKLOADS, Workload, get_workload, paper_benchmarks

__version__ = "1.4.0"

__all__ = [
    "Constraints", "Cut", "evaluate_cut",
    "find_best_cut", "find_best_cuts", "enumerate_feasible_cuts",
    "SearchStats", "SearchLimits", "SearchResult", "MultiCutResult",
    "SelectionResult", "select_iterative", "select_optimal",
    "select_area_constrained",
    "select_clubbing", "select_maxmiso", "BlockTooLargeError",
    "CostModel", "uniform_cost_model", "estimated_speedup",
    "SweepSpec", "SweepOutcome", "SearchCache", "run_sweep",
    "Session", "ArtifactStore", "StoreStats", "default_store_dir",
    "FusedAFU", "RewriteResult", "rewrite_module",
    "MeasuredSpeedup", "SpeedupRow", "measure_selection", "run_speedup",
    "Application", "prepare_application", "compile_workload",
    "WORKLOADS", "Workload", "get_workload", "paper_benchmarks",
    "__version__",
]
